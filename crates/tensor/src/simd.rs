//! Runtime CPU-feature detection and kernel-path selection.
//!
//! The per-point hot loops (quantizer, interpolation stencils, Huffman
//! histogramming) each exist in a scalar form — the reference
//! implementation and test oracle — and in vectorized forms selected at
//! runtime from the CPU's feature set. This module owns the *selection*;
//! the kernels themselves live next to the code they accelerate
//! (`qoz_codec::simd`, `qoz_predict::simd`).
//!
//! Every kernel path is **bit-identical** to the scalar path by
//! construction: compressed streams, reconstructions and tuner statistics
//! do not depend on which path ran. The dispatch therefore only affects
//! throughput, never bytes — the golden-bitstream pins hold on all paths.
//!
//! Setting `QOZ_FORCE_SCALAR=1` in the environment pins the scalar path
//! for the whole process (read once, cached), the escape hatch for
//! bisecting a suspected kernel bug or benchmarking the baseline.

use std::sync::OnceLock;

/// Which kernel implementation the hot loops dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelPath {
    /// AVX2: 4×f64 lanes (x86_64).
    Avx2,
    /// SSE2: 2×f64 lanes (x86_64 baseline).
    Sse2,
    /// NEON: 2×f64 lanes (aarch64 baseline).
    Neon,
    /// Portable scalar reference (any target).
    Scalar,
}

impl KernelPath {
    /// Stable lowercase name, used in telemetry labels and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            KernelPath::Avx2 => "avx2",
            KernelPath::Sse2 => "sse2",
            KernelPath::Neon => "neon",
            KernelPath::Scalar => "scalar",
        }
    }

    /// f64 lanes processed per vector op on this path.
    pub fn lanes_f64(self) -> usize {
        match self {
            KernelPath::Avx2 => 4,
            KernelPath::Sse2 | KernelPath::Neon => 2,
            KernelPath::Scalar => 1,
        }
    }
}

impl std::fmt::Display for KernelPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Detect the best kernel path the running CPU supports, ignoring the
/// `QOZ_FORCE_SCALAR` override (see [`selected`] for the effective path).
pub fn detect() -> KernelPath {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return KernelPath::Avx2;
        }
        // SSE2 is part of the x86_64 baseline.
        return KernelPath::Sse2;
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is part of the aarch64 baseline.
        return KernelPath::Neon;
    }
    #[allow(unreachable_code)]
    KernelPath::Scalar
}

/// Whether `QOZ_FORCE_SCALAR=1` is set (read once per process).
pub fn force_scalar() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| {
        std::env::var("QOZ_FORCE_SCALAR")
            .map(|v| v == "1")
            .unwrap_or(false)
    })
}

/// The kernel path the hot loops dispatch to: [`detect`] unless
/// `QOZ_FORCE_SCALAR=1` pins [`KernelPath::Scalar`]. Cached per process.
pub fn selected() -> KernelPath {
    static SELECTED: OnceLock<KernelPath> = OnceLock::new();
    *SELECTED.get_or_init(|| {
        if force_scalar() {
            KernelPath::Scalar
        } else {
            detect()
        }
    })
}

/// Whether `path` can execute on the running CPU. Used by the
/// equivalence tests to exercise every runnable path, not just the
/// selected one.
pub fn supported(path: KernelPath) -> bool {
    match path {
        KernelPath::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
        #[cfg(target_arch = "x86_64")]
        KernelPath::Sse2 => true,
        #[cfg(target_arch = "aarch64")]
        KernelPath::Neon => true,
        #[allow(unreachable_patterns)]
        _ => false,
    }
}

/// All paths runnable on this CPU, best first, always ending in `Scalar`.
pub fn supported_paths() -> Vec<KernelPath> {
    [
        KernelPath::Avx2,
        KernelPath::Sse2,
        KernelPath::Neon,
        KernelPath::Scalar,
    ]
    .into_iter()
    .filter(|&p| supported(p))
    .collect()
}

/// Comma-separated list of the vector feature sets the running CPU
/// advertises (of those the kernels care about). Recorded in the bench
/// JSON header so before/after numbers are apples-to-apples.
pub fn cpu_features() -> String {
    let mut feats: Vec<&str> = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            feats.push("avx2");
        }
        feats.push("sse2");
    }
    #[cfg(target_arch = "aarch64")]
    feats.push("neon");
    if feats.is_empty() {
        feats.push("none");
    }
    feats.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_supported_and_stable() {
        let d = detect();
        assert!(supported(d));
        assert_eq!(d, detect());
        assert_eq!(selected(), selected());
    }

    #[test]
    fn scalar_always_supported() {
        assert!(supported(KernelPath::Scalar));
        let paths = supported_paths();
        assert_eq!(paths.last(), Some(&KernelPath::Scalar));
        assert!(paths.contains(&detect()));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(KernelPath::Avx2.name(), "avx2");
        assert_eq!(KernelPath::Sse2.name(), "sse2");
        assert_eq!(KernelPath::Neon.name(), "neon");
        assert_eq!(KernelPath::Scalar.name(), "scalar");
        assert_eq!(KernelPath::Avx2.to_string(), "avx2");
    }

    #[test]
    fn lane_widths() {
        assert_eq!(KernelPath::Avx2.lanes_f64(), 4);
        assert_eq!(KernelPath::Sse2.lanes_f64(), 2);
        assert_eq!(KernelPath::Neon.lanes_f64(), 2);
        assert_eq!(KernelPath::Scalar.lanes_f64(), 1);
    }

    #[test]
    fn cpu_features_nonempty() {
        assert!(!cpu_features().is_empty());
    }
}
