//! Thread-parallel chunked compression and the parallel-I/O performance
//! model behind the paper's Fig. 14.
//!
//! The paper's final experiment dumps/loads Hurricane-Isabel data from
//! 1K–8K cores of the Bebop supercomputer, each rank compressing 1.3 GB
//! before hitting the shared parallel filesystem. We reproduce the two
//! ingredients separately (documented substitution, `DESIGN.md` §3):
//!
//! * [`parallel`] — real thread-parallel per-rank compression over array
//!   chunks (crossbeam scoped threads; ranks are independent exactly as
//!   MPI ranks are),
//! * [`iomodel`] — an analytic shared-bandwidth model: aggregate link
//!   bandwidth grows with rank count until the filesystem backbone
//!   saturates, at which point the bytes-on-the-wire reduction from a
//!   higher compression ratio dominates end-to-end dump/load time.

//! * [`pool`] — the resident-service counterpart of [`parallel`]: a
//!   bounded-admission [`BoundedQueue`] (producers shed load, never
//!   block) and a [`WorkerPool`] whose workers own private state and
//!   survive job panics by replacement — the substrate `qoz_serve`
//!   dispatches requests onto.

pub mod iomodel;
pub mod parallel;
pub mod pool;

pub use iomodel::{IoModel, IoTiming};
pub use parallel::{chunk_along_dim0, compress_chunks, compress_chunks_into, decompress_chunks};
pub use pool::{BoundedQueue, WorkerPool};
