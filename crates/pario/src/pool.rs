//! A bounded-admission worker pool with panic replacement.
//!
//! The chunk helpers in [`crate::parallel`] fan a *known* batch of work
//! over scoped threads and join; a long-running service has the opposite
//! shape: an unbounded stream of jobs arriving faster or slower than the
//! workers drain them. This module provides the two primitives that
//! shape needs, built only on `std`:
//!
//! * [`BoundedQueue`] — a closeable MPMC queue whose producer side
//!   **never blocks**: [`BoundedQueue::try_push`] hands the job back
//!   when the queue is full, so callers shed load explicitly instead of
//!   queueing unbounded memory behind a slow consumer.
//! * [`WorkerPool`] — N resident workers, each owning private mutable
//!   state built by a factory (a compression pipeline, a scratch arena —
//!   anything `!Sync`). A job handler that panics takes only its worker
//!   with it: the pool spawns a **fresh replacement** (with fresh state,
//!   since the old state may be mid-mutation) and keeps serving. The
//!   pool itself never propagates a panic.
//!
//! Jobs that need a reply should carry their own response channel; if a
//! handler panics before replying, it is the *caller's* contract to
//! catch that first (reply, then resume the panic so the pool still
//! replaces the worker) or to time out on the reply channel.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A closeable bounded MPMC queue: non-blocking producers, blocking
/// consumers.
#[derive(Debug)]
pub struct BoundedQueue<J> {
    inner: Mutex<QueueInner<J>>,
    ready: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct QueueInner<J> {
    items: VecDeque<J>,
    closed: bool,
}

impl<J> BoundedQueue<J> {
    /// Create a queue admitting at most `capacity` pending jobs.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Admit `job`, or hand it back: `Err` carries the rejected job when
    /// the queue is full (shed it) or closed (shutting down). Never
    /// blocks — this is the load-shedding edge.
    pub fn try_push(&self, job: J) -> Result<(), J> {
        let mut q = self.inner.lock().expect("queue lock poisoned");
        if q.closed || q.items.len() >= self.capacity {
            return Err(job);
        }
        q.items.push_back(job);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Block until a job is available (`Some`) or the queue is closed
    /// *and* drained (`None` — the consumer's signal to exit).
    pub fn pop(&self) -> Option<J> {
        let mut q = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(job) = q.items.pop_front() {
                return Some(job);
            }
            if q.closed {
                return None;
            }
            q = self.ready.wait(q).expect("queue lock poisoned");
        }
    }

    /// Jobs currently waiting (racy by nature; for draining/metrics).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").items.len()
    }

    /// `true` when no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Close the queue: producers get their jobs back, consumers drain
    /// what's left and then see `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock poisoned").closed = true;
        self.ready.notify_all();
    }
}

/// A fixed-size pool of workers over a [`BoundedQueue`], with per-worker
/// state and panic replacement.
pub struct WorkerPool<J: Send + 'static> {
    queue: Arc<BoundedQueue<J>>,
    shared: Arc<PoolShared<J>>,
}

struct PoolShared<J> {
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    replaced: AtomicU64,
    factory_and_handler: FactoryHandler<J>,
}

struct FactoryHandler<J> {
    factory: Box<dyn Fn() -> Box<dyn FnMut(J) + Send> + Send + Sync>,
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawn `workers` threads. `factory` runs once per worker (and once
    /// per replacement) and returns that worker's job handler, closing
    /// over whatever private state the worker owns.
    pub fn new<F, H>(workers: usize, capacity: usize, factory: F) -> Self
    where
        F: Fn() -> H + Send + Sync + 'static,
        H: FnMut(J) + Send + 'static,
    {
        assert!(workers > 0, "pool needs at least one worker");
        let queue = Arc::new(BoundedQueue::new(capacity));
        let shared = Arc::new(PoolShared {
            handles: Mutex::new(Vec::with_capacity(workers)),
            replaced: AtomicU64::new(0),
            factory_and_handler: FactoryHandler {
                factory: Box::new(move || Box::new(factory())),
            },
        });
        let pool = WorkerPool { queue, shared };
        for _ in 0..workers {
            pool.spawn_worker();
        }
        pool
    }

    fn spawn_worker(&self) {
        let queue = Arc::clone(&self.queue);
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::spawn(move || run_worker(queue, shared));
        self.shared
            .handles
            .lock()
            .expect("pool handles lock poisoned")
            .push(handle);
    }

    /// The pool's admission queue (share it with producers).
    pub fn queue(&self) -> Arc<BoundedQueue<J>> {
        Arc::clone(&self.queue)
    }

    /// Workers replaced after a handler panic so far.
    pub fn workers_replaced(&self) -> u64 {
        self.shared.replaced.load(Ordering::Relaxed)
    }

    /// Close the queue, let workers drain it, and join them all —
    /// including replacements spawned during the drain.
    pub fn shutdown(self) {
        self.queue.close();
        // Replacement workers push their handles while we join, so drain
        // the vec until it stays empty.
        loop {
            let batch: Vec<_> = {
                let mut h = self
                    .shared
                    .handles
                    .lock()
                    .expect("pool handles lock poisoned");
                std::mem::take(&mut *h)
            };
            if batch.is_empty() {
                break;
            }
            for handle in batch {
                // A worker that panicked outside the handler guard (it
                // can't — but belt and suspenders) must not poison
                // shutdown.
                let _ = handle.join();
            }
        }
    }
}

impl<J: Send + 'static> std::fmt::Debug for WorkerPool<J> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("pending", &self.queue.len())
            .field("replaced", &self.workers_replaced())
            .finish()
    }
}

fn run_worker<J: Send + 'static>(queue: Arc<BoundedQueue<J>>, shared: Arc<PoolShared<J>>) {
    let jobs = qoz_telemetry::global().counter("qoz_pool_jobs_total", &[]);
    let mut handler = (shared.factory_and_handler.factory)();
    while let Some(job) = queue.pop() {
        let outcome = catch_unwind(AssertUnwindSafe(|| handler(job)));
        jobs.inc();
        if outcome.is_err() {
            // This worker's state may be mid-mutation: discard it and
            // hand the queue to a fresh replacement. The pool never
            // loses capacity to a poison job.
            shared.replaced.fetch_add(1, Ordering::Relaxed);
            qoz_telemetry::global()
                .counter("qoz_pool_workers_replaced_total", &[])
                .inc();
            let q = Arc::clone(&queue);
            let s = Arc::clone(&shared);
            let handle = std::thread::spawn(move || run_worker(q, s));
            shared
                .handles
                .lock()
                .expect("pool handles lock poisoned")
                .push(handle);
            return;
        }
    }
}

/// Spin-wait (with a yield) until `done` returns true or `timeout`
/// elapses; returns whether the condition was met. The drain loop of a
/// graceful shutdown: cheap, dependency-free, and precise enough for
/// second-scale deadlines.
pub fn wait_until(timeout: Duration, mut done: impl FnMut() -> bool) -> bool {
    let start = std::time::Instant::now();
    while !done() {
        if start.elapsed() >= timeout {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn try_push_sheds_when_full_and_when_closed() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "full queue hands the job back");
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(4).is_ok());
        q.close();
        assert_eq!(q.try_push(5), Err(5), "closed queue rejects");
        // Drain continues after close...
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
        // ...then consumers see the end.
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pool_processes_all_jobs_across_workers() {
        let sum = Arc::new(AtomicUsize::new(0));
        let pool = {
            let sum = Arc::clone(&sum);
            WorkerPool::new(4, 64, move || {
                let sum = Arc::clone(&sum);
                move |j: usize| {
                    sum.fetch_add(j, Ordering::Relaxed);
                }
            })
        };
        let q = pool.queue();
        let mut pushed = 0usize;
        for j in 1..=50 {
            // Bounded admission: retry politely instead of asserting the
            // racy instantaneous fill level.
            let mut job = j;
            loop {
                match q.try_push(job) {
                    Ok(()) => break,
                    Err(back) => {
                        job = back;
                        std::thread::yield_now();
                    }
                }
            }
            pushed += j;
        }
        pool.shutdown();
        assert_eq!(sum.load(Ordering::Relaxed), pushed);
    }

    #[test]
    fn panicking_job_replaces_worker_and_pool_keeps_serving() {
        let (tx, rx) = mpsc::channel::<u32>();
        let tx = Arc::new(Mutex::new(tx));
        let pool = {
            let tx = Arc::clone(&tx);
            WorkerPool::new(1, 16, move || {
                let tx = Arc::clone(&tx);
                move |j: u32| {
                    if j == 13 {
                        panic!("poison job");
                    }
                    tx.lock().unwrap().send(j).unwrap();
                }
            })
        };
        let q = pool.queue();
        q.try_push(1).unwrap();
        q.try_push(13).unwrap(); // kills the only worker
        q.try_push(2).unwrap(); // must still be served, by the
                                // replacement
        let mut got = vec![
            rx.recv_timeout(Duration::from_secs(10)).unwrap(),
            rx.recv_timeout(Duration::from_secs(10)).unwrap(),
        ];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert_eq!(pool.workers_replaced(), 1);
        pool.shutdown();
    }

    #[test]
    fn per_worker_state_is_private_and_rebuilt_after_panic() {
        // Each worker counts its own served jobs in captured state; a
        // panic discards the count with the worker.
        let built = Arc::new(AtomicUsize::new(0));
        let pool = {
            let built = Arc::clone(&built);
            WorkerPool::new(2, 16, move || {
                built.fetch_add(1, Ordering::Relaxed);
                let mut served = 0usize;
                move |j: u32| {
                    served += 1;
                    assert!(served < 1000);
                    if j == 99 {
                        panic!("die");
                    }
                }
            })
        };
        let q = pool.queue();
        for j in 0..8 {
            while q.try_push(j).is_err() {
                std::thread::yield_now();
            }
        }
        while q.try_push(99).is_err() {
            std::thread::yield_now();
        }
        // Wait for the replacement to come up before shutting down.
        assert!(wait_until(Duration::from_secs(10), || built
            .load(Ordering::Relaxed)
            == 3));
        pool.shutdown();
        assert_eq!(built.load(Ordering::Relaxed), 3, "2 original + 1 rebuilt");
    }

    #[test]
    fn wait_until_times_out() {
        assert!(!wait_until(Duration::from_millis(10), || false));
        assert!(wait_until(Duration::from_secs(1), || true));
    }
}
