//! Thread-parallel per-rank compression.
//!
//! Chunks are statically partitioned into contiguous slabs, one per
//! worker (crossbeam scoped threads — no `'static` bound needed). Each
//! worker owns a disjoint `&mut` slice of the output vector, so results
//! land in place without any per-chunk locking, and chunk order — the
//! serial-equals-parallel determinism invariant — is preserved by
//! construction. Chunks are near-equal sized (see [`chunk_along_dim0`]),
//! which keeps the static split balanced.
//!
//! Each worker owns one [`Scratch`] arena for its whole slab — on both
//! directions of the pipeline — so stage buffers (working copy, bins,
//! side streams, entropy staging) are allocated once per worker rather
//! than once per chunk: the archive writer's many-chunk variables ride
//! the compress slabs, the archive reader's region queries ride the
//! decode slabs. Scratch never changes bytes or decoded values, so the
//! serial-equals-parallel invariant is untouched.

use qoz_codec::stream::{Compressor, ErrorBound};
use qoz_codec::{Result, Scratch};
use qoz_tensor::{NdArray, Region, Scalar, Shape};

/// Split an array into `n` near-equal chunks along dimension 0 (the
/// usual HPC domain decomposition). Returns fewer chunks when dim 0 is
/// shorter than `n`.
pub fn chunk_along_dim0<T: Scalar>(data: &NdArray<T>, n: usize) -> Vec<NdArray<T>> {
    assert!(n > 0);
    let shape = data.shape();
    let d0 = shape.dim(0);
    let n = n.min(d0);
    let mut out = Vec::with_capacity(n);
    let base = d0 / n;
    let extra = d0 % n;
    let mut start = 0usize;
    for k in 0..n {
        let len = base + usize::from(k < extra);
        let mut origin = vec![0usize; shape.ndim()];
        let mut size = shape.dims().to_vec();
        origin[0] = start;
        size[0] = len;
        out.push(data.extract_region(&Region::new(&origin, &size)));
        start += len;
    }
    out
}

/// Compress every chunk with `threads` workers; returns blobs in chunk
/// order.
pub fn compress_chunks<T, C>(
    compressor: &C,
    chunks: &[NdArray<T>],
    bound: ErrorBound,
    threads: usize,
) -> Vec<Vec<u8>>
where
    T: Scalar,
    C: Compressor<T> + Sync + ?Sized,
{
    if chunks.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(chunks.len());
    let per = chunks.len().div_ceil(threads);
    let mut results: Vec<Vec<u8>> = vec![Vec::new(); chunks.len()];

    crossbeam::scope(|s| {
        for (out_slab, in_slab) in results.chunks_mut(per).zip(chunks.chunks(per)) {
            s.spawn(move |_| {
                // One arena per worker: reused across every chunk of the
                // slab, byte-identical to the scratchless path.
                let mut scratch = Scratch::new();
                for (out, chunk) in out_slab.iter_mut().zip(in_slab) {
                    *out = compressor.compress_with_scratch(chunk, bound, &mut scratch);
                }
            });
        }
    })
    .expect("compression worker panicked");

    results
}

/// Compress every chunk with `threads` workers and stream the blobs, in
/// chunk order, into `sink`; returns per-chunk byte counts.
///
/// This is the chunked-dump path of the streaming API: callers that
/// persist blobs back-to-back (the archive writer's payload, a per-rank
/// dump file) take the per-chunk sizes for their index instead of
/// holding a `Vec<Vec<u8>>` of their own. The parallel stage still
/// materializes every blob before the ordered write-out begins (chunk
/// order must be preserved), so peak memory during compression is
/// unchanged — what the sink variant removes is the *caller's* second
/// copy of the concatenated payload.
pub fn compress_chunks_into<T, C>(
    compressor: &C,
    chunks: &[NdArray<T>],
    bound: ErrorBound,
    threads: usize,
    sink: &mut dyn std::io::Write,
) -> Result<Vec<u64>>
where
    T: Scalar,
    C: Compressor<T> + Sync + ?Sized,
{
    let blobs = compress_chunks(compressor, chunks, bound, threads);
    let mut lens = Vec::with_capacity(blobs.len());
    for blob in blobs {
        sink.write_all(&blob)?;
        lens.push(blob.len() as u64);
    }
    Ok(lens)
}

/// Decompress every blob with `threads` workers; returns arrays in blob
/// order, or the first error encountered.
pub fn decompress_chunks<T, C>(
    compressor: &C,
    blobs: &[Vec<u8>],
    threads: usize,
) -> Result<Vec<NdArray<T>>>
where
    T: Scalar,
    C: Compressor<T> + Sync + ?Sized,
{
    if blobs.is_empty() {
        return Ok(Vec::new());
    }
    let threads = threads.max(1).min(blobs.len());
    let per = blobs.len().div_ceil(threads);
    let mut results: Vec<Option<Result<NdArray<T>>>> = (0..blobs.len()).map(|_| None).collect();

    crossbeam::scope(|s| {
        for (out_slab, in_slab) in results.chunks_mut(per).zip(blobs.chunks(per)) {
            s.spawn(move |_| {
                // One arena per worker, mirroring `compress_chunks`:
                // the decode slab reuses its stage buffers across every
                // blob, with values identical to the allocating path.
                let mut scratch = Scratch::new();
                for (out, blob) in out_slab.iter_mut().zip(in_slab) {
                    *out = Some(compressor.decompress_with_scratch(blob, &mut scratch));
                }
            });
        }
    })
    .expect("decompression worker panicked");

    results
        .into_iter()
        .map(|m| m.expect("missing chunk result"))
        .collect()
}

/// Reassemble chunks produced by [`chunk_along_dim0`].
pub fn reassemble_dim0<T: Scalar>(chunks: &[NdArray<T>]) -> NdArray<T> {
    assert!(!chunks.is_empty());
    let first = chunks[0].shape();
    let nd = first.ndim();
    let total0: usize = chunks.iter().map(|c| c.shape().dim(0)).sum();
    let mut dims = first.dims().to_vec();
    dims[0] = total0;
    let shape = Shape::new(&dims);
    let mut out = NdArray::<T>::zeros(shape);
    let mut start = 0usize;
    for c in chunks {
        let mut origin = vec![0usize; nd];
        origin[0] = start;
        out.insert_region(&Region::new(&origin, c.shape().dims()), c);
        start += c.shape().dim(0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_tensor::Shape;

    fn data() -> NdArray<f32> {
        NdArray::from_fn(Shape::d3(25, 16, 16), |i| {
            (i[0] as f32 * 0.31).sin() + (i[1] as f32 - i[2] as f32) * 0.01
        })
    }

    #[test]
    fn chunking_covers_all_rows() {
        let d = data();
        let chunks = chunk_along_dim0(&d, 4);
        assert_eq!(chunks.len(), 4);
        let rows: Vec<usize> = chunks.iter().map(|c| c.shape().dim(0)).collect();
        assert_eq!(rows.iter().sum::<usize>(), 25);
        // Near-equal split: 7,6,6,6.
        assert_eq!(rows, vec![7, 6, 6, 6]);
        let back = reassemble_dim0(&chunks);
        assert_eq!(back.as_slice(), d.as_slice());
    }

    #[test]
    fn more_chunks_than_rows_clamped() {
        let d = NdArray::from_fn(Shape::d2(3, 8), |i| i[1] as f64);
        assert_eq!(chunk_along_dim0(&d, 10).len(), 3);
    }

    #[test]
    fn parallel_roundtrip_matches_serial() {
        let d = data();
        let chunks = chunk_along_dim0(&d, 6);
        let bound = ErrorBound::Abs(1e-3);
        let c = qoz_sz3::Sz3::default();

        let par = compress_chunks(&c, &chunks, bound, 4);
        // Serial reference.
        let ser: Vec<Vec<u8>> = chunks.iter().map(|ch| c.compress(ch, bound)).collect();
        assert_eq!(par, ser, "parallel compression must be deterministic");

        // The streaming variant emits the same bytes, concatenated, and
        // reports the split points.
        let mut sink = Vec::new();
        let lens = compress_chunks_into(&c, &chunks, bound, 4, &mut sink).unwrap();
        assert_eq!(sink, par.concat());
        assert_eq!(
            lens,
            par.iter().map(|b| b.len() as u64).collect::<Vec<u64>>()
        );

        let recon = decompress_chunks::<f32, _>(&c, &par, 4).unwrap();
        let full = reassemble_dim0(&recon);
        assert!(d.max_abs_diff(&full) <= 1e-3);
    }

    #[test]
    fn qoz_parallel_roundtrip() {
        let d = data();
        let chunks = chunk_along_dim0(&d, 3);
        let bound = ErrorBound::Rel(1e-3);
        let q = qoz_core::Qoz::default();
        let blobs = compress_chunks(&q, &chunks, bound, 3);
        let recon = decompress_chunks::<f32, _>(&q, &blobs, 3).unwrap();
        for (a, b) in chunks.iter().zip(&recon) {
            let abs = bound.absolute(a);
            assert!(a.max_abs_diff(b) <= abs);
        }
    }

    #[test]
    fn corrupt_blob_fails_cleanly() {
        let d = data();
        let chunks = chunk_along_dim0(&d, 2);
        let c = qoz_sz3::Sz3::default();
        let mut blobs = compress_chunks(&c, &chunks, ErrorBound::Abs(1e-3), 2);
        blobs[1].truncate(10);
        assert!(decompress_chunks::<f32, _>(&c, &blobs, 2).is_err());
    }
}
