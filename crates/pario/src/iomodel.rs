//! Analytic parallel dump/load performance model (Fig. 14 substrate).
//!
//! The model captures the regime the paper's Bebop experiment exposes:
//! every rank holds a fixed amount of data; aggregate I/O bandwidth grows
//! linearly with rank count until the parallel filesystem's backbone
//! saturates; compression trades per-rank compute time for a CR-fold
//! reduction in bytes on the wire. Past the saturation point, the codec
//! with the best compression ratio wins end-to-end — which is how QoZ
//! tops Fig. 14 despite not having the fastest kernels.

/// Cluster and codec parameters for one modeled configuration.
#[derive(Debug, Clone)]
pub struct IoModel {
    /// Number of ranks (cores) participating.
    pub ranks: usize,
    /// Raw bytes held by each rank (paper: 1.3 GB).
    pub bytes_per_rank: f64,
    /// Per-rank I/O bandwidth toward the filesystem, bytes/s.
    pub rank_bandwidth: f64,
    /// Filesystem backbone bandwidth cap, bytes/s.
    pub fs_bandwidth: f64,
}

impl Default for IoModel {
    fn default() -> Self {
        // Bebop-like: 1.3 GB/rank, ~500 MB/s per-rank link share,
        // ~80 GB/s aggregate parallel filesystem.
        IoModel {
            ranks: 1024,
            bytes_per_rank: 1.3e9,
            rank_bandwidth: 500.0e6,
            fs_bandwidth: 80.0e9,
        }
    }
}

/// End-to-end timing for one codec under the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoTiming {
    /// Seconds to compress (0 for raw I/O).
    pub compress_s: f64,
    /// Seconds on the wire writing.
    pub write_s: f64,
    /// Seconds on the wire reading.
    pub read_s: f64,
    /// Seconds to decompress (0 for raw I/O).
    pub decompress_s: f64,
}

impl IoTiming {
    /// Total dump (write-path) time.
    pub fn dump_s(&self) -> f64 {
        self.compress_s + self.write_s
    }
    /// Total load (read-path) time.
    pub fn load_s(&self) -> f64 {
        self.read_s + self.decompress_s
    }
}

impl IoModel {
    /// Effective aggregate bandwidth: linear in ranks until the backbone
    /// saturates.
    pub fn aggregate_bandwidth(&self) -> f64 {
        (self.ranks as f64 * self.rank_bandwidth).min(self.fs_bandwidth)
    }

    /// Total raw bytes across ranks.
    pub fn total_bytes(&self) -> f64 {
        self.ranks as f64 * self.bytes_per_rank
    }

    /// Timing without compression.
    pub fn raw(&self) -> IoTiming {
        let t = self.total_bytes() / self.aggregate_bandwidth();
        IoTiming {
            compress_s: 0.0,
            write_s: t,
            read_s: t,
            decompress_s: 0.0,
        }
    }

    /// Timing with a codec of the given compression ratio and per-rank
    /// kernel throughputs (bytes/s). Ranks compress concurrently, so
    /// kernel time is data-per-rank over per-rank throughput.
    pub fn with_codec(&self, cr: f64, compress_bps: f64, decompress_bps: f64) -> IoTiming {
        assert!(cr > 0.0 && compress_bps > 0.0 && decompress_bps > 0.0);
        let wire = self.total_bytes() / cr / self.aggregate_bandwidth();
        IoTiming {
            compress_s: self.bytes_per_rank / compress_bps,
            write_s: wire,
            read_s: wire,
            decompress_s: self.bytes_per_rank / decompress_bps,
        }
    }

    /// Rank count past which raw I/O saturates the backbone.
    pub fn saturation_ranks(&self) -> usize {
        (self.fs_bandwidth / self.rank_bandwidth).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_saturates() {
        let m = IoModel {
            ranks: 1_000_000,
            ..Default::default()
        };
        assert_eq!(m.aggregate_bandwidth(), m.fs_bandwidth);
        let small = IoModel {
            ranks: 10,
            ..Default::default()
        };
        assert_eq!(small.aggregate_bandwidth(), 10.0 * small.rank_bandwidth);
    }

    #[test]
    fn raw_dump_time_grows_linearly_after_saturation() {
        let mk = |ranks| IoModel {
            ranks,
            ..Default::default()
        };
        let sat = mk(1024).saturation_ranks();
        let t1 = mk(sat * 2).raw().dump_s();
        let t2 = mk(sat * 4).raw().dump_s();
        assert!((t2 / t1 - 2.0).abs() < 1e-9, "{t1} {t2}");
    }

    #[test]
    fn compression_wins_at_scale() {
        // Past saturation, a CR=20 codec at 120 MB/s beats raw I/O.
        let m = IoModel {
            ranks: 8192,
            ..Default::default()
        };
        let raw = m.raw().dump_s();
        let qoz = m.with_codec(20.0, 120.0e6, 350.0e6).dump_s();
        assert!(qoz < raw, "compressed {qoz}s vs raw {raw}s");
    }

    #[test]
    fn higher_cr_wins_when_wire_bound() {
        let m = IoModel {
            ranks: 8192,
            ..Default::default()
        };
        // Same kernel speed, different CR: higher CR must dump faster.
        let lo = m.with_codec(10.0, 120.0e6, 300.0e6).dump_s();
        let hi = m.with_codec(20.0, 120.0e6, 300.0e6).dump_s();
        assert!(hi < lo);
    }

    #[test]
    fn fast_codec_wins_when_compute_bound() {
        // At small scale (no saturation), wire time is negligible and the
        // faster kernel wins even at lower CR.
        let m = IoModel {
            ranks: 8,
            bytes_per_rank: 1.3e9,
            rank_bandwidth: 10.0e9,
            fs_bandwidth: 800.0e9,
        };
        let fast_low_cr = m.with_codec(8.0, 600.0e6, 900.0e6).dump_s();
        let slow_high_cr = m.with_codec(25.0, 120.0e6, 300.0e6).dump_s();
        assert!(fast_low_cr < slow_high_cr);
    }

    #[test]
    fn timing_components_sum() {
        let m = IoModel::default();
        let t = m.with_codec(15.0, 100.0e6, 200.0e6);
        assert!((t.dump_s() - (t.compress_s + t.write_s)).abs() < 1e-12);
        assert!((t.load_s() - (t.read_s + t.decompress_s)).abs() < 1e-12);
    }
}
