//! 1D interpolation kernels and per-level configuration.
//!
//! Multi-dimensional spline interpolation decomposes into 1D passes along
//! each dimension (paper §V-A). A point at an odd multiple of the level
//! stride `s` is predicted from its even-multiple neighbours at `±s` and
//! `±3s`, all of which were reconstructed on earlier levels or earlier
//! passes of the current level.

/// Interpolation kernel type.
///
/// The paper ships linear and cubic spline kernels and names richer
/// kernels as future work (§VIII); [`InterpKind::Quadratic`] — the
/// asymmetric three-point parabola later adopted by QoZ 1.1 — is
/// implemented here as that extension and participates in the level
/// selector alongside the original two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InterpKind {
    /// Two-point average: `(v[-s] + v[+s]) / 2`.
    Linear,
    /// Four-point cubic spline: `(-v[-3s] + 9 v[-s] + 9 v[+s] - v[+3s]) / 16`.
    #[default]
    Cubic,
    /// Asymmetric three-point parabola through `{-3s, -s, +s}`:
    /// `(-v[-3s] + 6 v[-s] + 3 v[+s]) / 8`.
    Quadratic,
}

impl InterpKind {
    /// All kernel candidates considered by the QoZ level selector.
    pub const ALL: [InterpKind; 3] = [InterpKind::Linear, InterpKind::Cubic, InterpKind::Quadratic];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            InterpKind::Linear => "linear",
            InterpKind::Cubic => "cubic",
            InterpKind::Quadratic => "quadratic",
        }
    }
}

/// Order in which dimensions are processed within one level.
///
/// The paper notes that of the `d!` permutations, testing the increasing
/// and decreasing orders "cover the best choices in almost all cases";
/// QoZ (like SZ3) therefore considers exactly these two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DimOrder {
    /// dim 0, dim 1, ..., dim d-1 (e.g. `012` for 3D).
    #[default]
    Ascending,
    /// dim d-1, ..., dim 1, dim 0 (e.g. `210` for 3D).
    Descending,
}

impl DimOrder {
    /// Both order candidates.
    pub const ALL: [DimOrder; 2] = [DimOrder::Ascending, DimOrder::Descending];

    /// The dimension sequence for an array of rank `ndim`.
    pub fn dims(self, ndim: usize) -> Vec<usize> {
        match self {
            DimOrder::Ascending => (0..ndim).collect(),
            DimOrder::Descending => (0..ndim).rev().collect(),
        }
    }

    /// Short display name (for a given rank), e.g. `"012"`.
    pub fn name(self, ndim: usize) -> String {
        self.dims(ndim)
            .iter()
            .map(|d| d.to_string())
            .collect::<String>()
    }
}

/// The per-level predictor configuration QoZ tunes: which kernel and which
/// dimension order to use on a given interpolation level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LevelConfig {
    /// Interpolation kernel.
    pub kind: InterpKind,
    /// Dimension processing order.
    pub order: DimOrder,
}

impl LevelConfig {
    /// The candidates the QoZ selector evaluates per level
    /// (3 kernels × 2 dimension orders).
    pub fn candidates() -> Vec<LevelConfig> {
        let mut out = Vec::with_capacity(InterpKind::ALL.len() * DimOrder::ALL.len());
        for kind in InterpKind::ALL {
            for order in DimOrder::ALL {
                out.push(LevelConfig { kind, order });
            }
        }
        out
    }
}

/// Predict the value at 1D line position `x` (an odd multiple of `s`)
/// from known neighbours read through `get(pos)`; `n` is the line length.
///
/// `get` must return the *reconstructed* value at an even multiple of `s`
/// (or a position refined earlier in the current level). Boundary
/// handling degrades gracefully: cubic → linear → nearest-known.
#[inline]
pub fn predict_line(
    kind: InterpKind,
    x: usize,
    s: usize,
    n: usize,
    get: impl Fn(usize) -> f64,
) -> f64 {
    let has_left = x >= s;
    let has_right = x + s < n;
    match (has_left, has_right) {
        (true, true) => {
            let has_left2 = x >= 3 * s;
            match kind {
                InterpKind::Cubic if has_left2 && x + 3 * s < n => {
                    return (-get(x - 3 * s) + 9.0 * get(x - s) + 9.0 * get(x + s)
                        - get(x + 3 * s))
                        / 16.0;
                }
                InterpKind::Quadratic if has_left2 => {
                    return (-get(x - 3 * s) + 6.0 * get(x - s) + 3.0 * get(x + s)) / 8.0;
                }
                _ => {}
            }
            (get(x - s) + get(x + s)) * 0.5
        }
        (true, false) => get(x - s),
        (false, true) => get(x + s),
        // A point with no known neighbour on its line can only occur for
        // degenerate single-point lines; predict zero.
        (false, false) => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_midpoint_exact_for_affine() {
        // v(x) = 2x + 1 is reproduced exactly by linear interpolation.
        let v = |p: usize| 2.0 * p as f64 + 1.0;
        let pred = predict_line(InterpKind::Linear, 5, 5, 11, v);
        assert_eq!(pred, v(5));
    }

    #[test]
    fn cubic_exact_for_cubic_polynomial() {
        // Cubic spline (-1,9,9,-1)/16 reproduces cubics exactly at the
        // midpoint of a uniform grid.
        let f = |p: f64| 0.5 * p * p * p - 2.0 * p * p + 3.0 * p - 1.0;
        let v = move |p: usize| f(p as f64);
        let pred = predict_line(InterpKind::Cubic, 3, 1, 7, v);
        assert!(
            (pred - f(3.0)).abs() < 1e-12,
            "pred {pred} expect {}",
            f(3.0)
        );
    }

    #[test]
    fn cubic_falls_back_to_linear_near_boundary() {
        // x=1, s=1, n=4: x-3s out of range -> linear fallback.
        let v = |p: usize| p as f64 * p as f64;
        let pred = predict_line(InterpKind::Cubic, 1, 1, 4, v);
        assert_eq!(pred, (v(0) + v(2)) / 2.0);
    }

    #[test]
    fn right_edge_copies_left_neighbor() {
        let v = |p: usize| p as f64;
        // x=6, s=2, n=7: x+s = 8 >= 7 -> copy left.
        let pred = predict_line(InterpKind::Linear, 6, 2, 7, v);
        assert_eq!(pred, 4.0);
    }

    #[test]
    fn left_edge_copies_right_neighbor() {
        let v = |p: usize| p as f64 + 10.0;
        // Hypothetical x < s case.
        let pred = predict_line(InterpKind::Cubic, 1, 2, 8, v);
        assert_eq!(pred, 13.0);
    }

    #[test]
    fn dim_order_sequences() {
        assert_eq!(DimOrder::Ascending.dims(3), vec![0, 1, 2]);
        assert_eq!(DimOrder::Descending.dims(3), vec![2, 1, 0]);
        assert_eq!(DimOrder::Ascending.name(3), "012");
        assert_eq!(DimOrder::Descending.name(2), "10");
    }

    #[test]
    fn six_distinct_candidates() {
        let c = LevelConfig::candidates();
        assert_eq!(c.len(), 6);
        for i in 0..c.len() {
            for j in i + 1..c.len() {
                assert_ne!(c[i], c[j]);
            }
        }
    }

    #[test]
    fn quadratic_exact_for_parabola() {
        let f = |p: f64| 2.0 * p * p - 3.0 * p + 1.0;
        let v = move |p: usize| f(p as f64);
        // x=3, s=1, n=5: uses {0, 2, 4}.
        let pred = predict_line(InterpKind::Quadratic, 3, 1, 5, v);
        assert!(
            (pred - f(3.0)).abs() < 1e-12,
            "pred {pred} expect {}",
            f(3.0)
        );
    }

    #[test]
    fn quadratic_needs_no_far_right_neighbor() {
        // Near the right edge, cubic degrades to linear but quadratic
        // still applies (it is one-sided on the left).
        let f = |p: f64| p * p;
        let v = move |p: usize| f(p as f64);
        // x=5, s=1, n=7: x+3s = 8 out of range.
        let quad = predict_line(InterpKind::Quadratic, 5, 1, 7, v);
        let cubic = predict_line(InterpKind::Cubic, 5, 1, 7, v);
        assert!((quad - f(5.0)).abs() < 1e-12);
        assert_eq!(cubic, (f(4.0) + f(6.0)) / 2.0); // linear fallback
    }

    #[test]
    fn quadratic_falls_back_to_linear_at_left_edge() {
        let v = |p: usize| p as f64;
        let pred = predict_line(InterpKind::Quadratic, 1, 1, 8, v);
        assert_eq!(pred, 1.0);
    }
}
