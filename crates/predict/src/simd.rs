//! Vectorized interpolation stencil kernels with runtime dispatch.
//!
//! [`fill_preds`] evaluates one interior line run of the multi-level
//! traversal (see [`crate::traverse::traverse_level_runs`]): a batch of
//! predicted points sharing one stencil, with neighbours at fixed
//! relative offsets `±d1`/`±d3`. The neighbour streams are gathered into
//! contiguous f64 staging arrays (a scalar load+convert per neighbour —
//! strided access defeats vector loads anyway), then the stencil
//! arithmetic runs lane-parallel.
//!
//! Bit-identity with the scalar traversal kernels in
//! [`crate::traverse`] holds because the vector combiners execute the
//! *same operation sequence* as the scalar expressions — same adds, same
//! multiplies, same final division, negation as a sign flip — so every
//! intermediate rounds identically. Within a run this is safe to batch:
//! all stencil neighbours sit on coordinates that are even multiples of
//! the level stride, which earlier levels/passes finalized, so no lane's
//! prediction depends on another lane's write.

use crate::interp::InterpKind;
use crate::traverse::{LineRun, RunStencil};
use qoz_tensor::Scalar;

pub use qoz_tensor::simd::{
    cpu_features, detect, force_scalar, selected, supported, supported_paths, KernelPath,
};

/// Maximum points per [`fill_preds`] call (matches the quantizer block
/// size in `qoz_codec::simd` so the engine stages both on the stack).
pub const BLOCK: usize = 64;

/// Fill `preds[k]` with the stencil prediction for the point at
/// `run.off0 + k*run.step`, for `k < preds.len()`.
///
/// `preds.len()` may be shorter than `run.cnt` (engines chunk long runs;
/// pass a shifted `off0` for later chunks). An unsupported `path`
/// silently degrades to scalar.
pub fn fill_preds<T: Scalar>(path: KernelPath, data: &[T], run: &LineRun, preds: &mut [f64]) {
    let n = preds.len();
    assert!(n <= BLOCK, "block too large: {n} > {BLOCK}");
    let (off0, step, d1, d3) = (run.off0, run.step, run.d1, run.d3);
    match run.stencil {
        RunStencil::CopyLeft => {
            let mut off = off0;
            for p in preds.iter_mut() {
                *p = data[off - d1].to_f64();
                off += step;
            }
        }
        RunStencil::Interp(InterpKind::Linear) => {
            let mut b = [0f64; BLOCK];
            let mut c = [0f64; BLOCK];
            let mut off = off0;
            for k in 0..n {
                b[k] = data[off - d1].to_f64();
                c[k] = data[off + d1].to_f64();
                off += step;
            }
            combine_linear(path, &b[..n], &c[..n], preds);
        }
        RunStencil::Interp(InterpKind::Cubic) => {
            let mut a = [0f64; BLOCK];
            let mut b = [0f64; BLOCK];
            let mut c = [0f64; BLOCK];
            let mut d = [0f64; BLOCK];
            let mut off = off0;
            for k in 0..n {
                a[k] = data[off - d3].to_f64();
                b[k] = data[off - d1].to_f64();
                c[k] = data[off + d1].to_f64();
                d[k] = data[off + d3].to_f64();
                off += step;
            }
            combine_cubic(path, &a[..n], &b[..n], &c[..n], &d[..n], preds);
        }
        RunStencil::Interp(InterpKind::Quadratic) => {
            let mut a = [0f64; BLOCK];
            let mut b = [0f64; BLOCK];
            let mut c = [0f64; BLOCK];
            let mut off = off0;
            for k in 0..n {
                a[k] = data[off - d3].to_f64();
                b[k] = data[off - d1].to_f64();
                c[k] = data[off + d1].to_f64();
                off += step;
            }
            combine_quadratic(path, &a[..n], &b[..n], &c[..n], preds);
        }
    }
}

/// `out[k] = (b[k] + c[k]) * 0.5` — the linear stencil.
// Safety (this and the two dispatchers below): each vector arm checks
// the CPU supports the feature its callee was compiled for.
#[allow(unsafe_code)]
fn combine_linear(path: KernelPath, b: &[f64], c: &[f64], out: &mut [f64]) {
    match path {
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2 if supported(KernelPath::Avx2) => unsafe { x86::linear_avx2(b, c, out) },
        #[cfg(target_arch = "x86_64")]
        KernelPath::Sse2 => unsafe { x86::linear_sse2(b, c, out) },
        #[cfg(target_arch = "aarch64")]
        KernelPath::Neon => unsafe { neon::linear_neon(b, c, out) },
        _ => linear_scalar(b, c, out),
    }
}

/// `out[k] = (-a[k] + 9·b[k] + 9·c[k] - d[k]) / 16` — the cubic stencil.
#[allow(unsafe_code)]
fn combine_cubic(path: KernelPath, a: &[f64], b: &[f64], c: &[f64], d: &[f64], out: &mut [f64]) {
    match path {
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2 if supported(KernelPath::Avx2) => unsafe {
            x86::cubic_avx2(a, b, c, d, out)
        },
        #[cfg(target_arch = "x86_64")]
        KernelPath::Sse2 => unsafe { x86::cubic_sse2(a, b, c, d, out) },
        #[cfg(target_arch = "aarch64")]
        KernelPath::Neon => unsafe { neon::cubic_neon(a, b, c, d, out) },
        _ => cubic_scalar(a, b, c, d, out),
    }
}

/// `out[k] = (-a[k] + 6·b[k] + 3·c[k]) / 8` — the quadratic stencil.
#[allow(unsafe_code)]
fn combine_quadratic(path: KernelPath, a: &[f64], b: &[f64], c: &[f64], out: &mut [f64]) {
    match path {
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2 if supported(KernelPath::Avx2) => unsafe {
            x86::quadratic_avx2(a, b, c, out)
        },
        #[cfg(target_arch = "x86_64")]
        KernelPath::Sse2 => unsafe { x86::quadratic_sse2(a, b, c, out) },
        #[cfg(target_arch = "aarch64")]
        KernelPath::Neon => unsafe { neon::quadratic_neon(a, b, c, out) },
        _ => quadratic_scalar(a, b, c, out),
    }
}

// The scalar combiners repeat the exact expressions of the fused loops
// in `traverse::line_contiguous`/`line_strided`; they are the vector
// tails and the fallback for unknown targets.

fn linear_scalar(b: &[f64], c: &[f64], out: &mut [f64]) {
    for k in 0..out.len() {
        out[k] = (b[k] + c[k]) * 0.5;
    }
}

fn cubic_scalar(a: &[f64], b: &[f64], c: &[f64], d: &[f64], out: &mut [f64]) {
    for k in 0..out.len() {
        out[k] = (-a[k] + 9.0 * b[k] + 9.0 * c[k] - d[k]) / 16.0;
    }
}

fn quadratic_scalar(a: &[f64], b: &[f64], c: &[f64], out: &mut [f64]) {
    for k in 0..out.len() {
        out[k] = (-a[k] + 6.0 * b[k] + 3.0 * c[k]) / 8.0;
    }
}

// Vector intrinsics are inherently `unsafe fn`s; the obligations are
// slice bounds (the `k + lanes <= n` loop guards) and CPU support
// (checked by the dispatchers before calling in).
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use super::{cubic_scalar, linear_scalar, quadratic_scalar};
    use core::arch::x86_64::*;

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn linear_avx2(b: &[f64], c: &[f64], out: &mut [f64]) {
        let n = out.len();
        let half = _mm256_set1_pd(0.5);
        let mut k = 0usize;
        while k + 4 <= n {
            let vb = _mm256_loadu_pd(b.as_ptr().add(k));
            let vc = _mm256_loadu_pd(c.as_ptr().add(k));
            let r = _mm256_mul_pd(_mm256_add_pd(vb, vc), half);
            _mm256_storeu_pd(out.as_mut_ptr().add(k), r);
            k += 4;
        }
        linear_scalar(&b[k..], &c[k..], &mut out[k..]);
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn linear_sse2(b: &[f64], c: &[f64], out: &mut [f64]) {
        let n = out.len();
        let half = _mm_set1_pd(0.5);
        let mut k = 0usize;
        while k + 2 <= n {
            let vb = _mm_loadu_pd(b.as_ptr().add(k));
            let vc = _mm_loadu_pd(c.as_ptr().add(k));
            let r = _mm_mul_pd(_mm_add_pd(vb, vc), half);
            _mm_storeu_pd(out.as_mut_ptr().add(k), r);
            k += 2;
        }
        linear_scalar(&b[k..], &c[k..], &mut out[k..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn cubic_avx2(a: &[f64], b: &[f64], c: &[f64], d: &[f64], out: &mut [f64]) {
        let n = out.len();
        let nine = _mm256_set1_pd(9.0);
        let sixteen = _mm256_set1_pd(16.0);
        let sign = _mm256_castsi256_pd(_mm256_set1_epi64x(i64::MIN));
        let mut k = 0usize;
        while k + 4 <= n {
            let va = _mm256_loadu_pd(a.as_ptr().add(k));
            let vb = _mm256_loadu_pd(b.as_ptr().add(k));
            let vc = _mm256_loadu_pd(c.as_ptr().add(k));
            let vd = _mm256_loadu_pd(d.as_ptr().add(k));
            // ((-a + 9b) + 9c) - d, then /16 — the scalar association.
            let mut t = _mm256_add_pd(_mm256_xor_pd(va, sign), _mm256_mul_pd(nine, vb));
            t = _mm256_add_pd(t, _mm256_mul_pd(nine, vc));
            t = _mm256_sub_pd(t, vd);
            _mm256_storeu_pd(out.as_mut_ptr().add(k), _mm256_div_pd(t, sixteen));
            k += 4;
        }
        cubic_scalar(&a[k..], &b[k..], &c[k..], &d[k..], &mut out[k..]);
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn cubic_sse2(a: &[f64], b: &[f64], c: &[f64], d: &[f64], out: &mut [f64]) {
        let n = out.len();
        let nine = _mm_set1_pd(9.0);
        let sixteen = _mm_set1_pd(16.0);
        let sign = _mm_castsi128_pd(_mm_set1_epi64x(i64::MIN));
        let mut k = 0usize;
        while k + 2 <= n {
            let va = _mm_loadu_pd(a.as_ptr().add(k));
            let vb = _mm_loadu_pd(b.as_ptr().add(k));
            let vc = _mm_loadu_pd(c.as_ptr().add(k));
            let vd = _mm_loadu_pd(d.as_ptr().add(k));
            let mut t = _mm_add_pd(_mm_xor_pd(va, sign), _mm_mul_pd(nine, vb));
            t = _mm_add_pd(t, _mm_mul_pd(nine, vc));
            t = _mm_sub_pd(t, vd);
            _mm_storeu_pd(out.as_mut_ptr().add(k), _mm_div_pd(t, sixteen));
            k += 2;
        }
        cubic_scalar(&a[k..], &b[k..], &c[k..], &d[k..], &mut out[k..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn quadratic_avx2(a: &[f64], b: &[f64], c: &[f64], out: &mut [f64]) {
        let n = out.len();
        let six = _mm256_set1_pd(6.0);
        let three = _mm256_set1_pd(3.0);
        let eight = _mm256_set1_pd(8.0);
        let sign = _mm256_castsi256_pd(_mm256_set1_epi64x(i64::MIN));
        let mut k = 0usize;
        while k + 4 <= n {
            let va = _mm256_loadu_pd(a.as_ptr().add(k));
            let vb = _mm256_loadu_pd(b.as_ptr().add(k));
            let vc = _mm256_loadu_pd(c.as_ptr().add(k));
            let mut t = _mm256_add_pd(_mm256_xor_pd(va, sign), _mm256_mul_pd(six, vb));
            t = _mm256_add_pd(t, _mm256_mul_pd(three, vc));
            _mm256_storeu_pd(out.as_mut_ptr().add(k), _mm256_div_pd(t, eight));
            k += 4;
        }
        quadratic_scalar(&a[k..], &b[k..], &c[k..], &mut out[k..]);
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn quadratic_sse2(a: &[f64], b: &[f64], c: &[f64], out: &mut [f64]) {
        let n = out.len();
        let six = _mm_set1_pd(6.0);
        let three = _mm_set1_pd(3.0);
        let eight = _mm_set1_pd(8.0);
        let sign = _mm_castsi128_pd(_mm_set1_epi64x(i64::MIN));
        let mut k = 0usize;
        while k + 2 <= n {
            let va = _mm_loadu_pd(a.as_ptr().add(k));
            let vb = _mm_loadu_pd(b.as_ptr().add(k));
            let vc = _mm_loadu_pd(c.as_ptr().add(k));
            let mut t = _mm_add_pd(_mm_xor_pd(va, sign), _mm_mul_pd(six, vb));
            t = _mm_add_pd(t, _mm_mul_pd(three, vc));
            _mm_storeu_pd(out.as_mut_ptr().add(k), _mm_div_pd(t, eight));
            k += 2;
        }
        quadratic_scalar(&a[k..], &b[k..], &c[k..], &mut out[k..]);
    }
}

// See the `x86` module note on `unsafe`; NEON is baseline on aarch64,
// and `vnegq_f64` is the IEEE sign flip (same as Rust's `-x`).
#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
mod neon {
    use super::{cubic_scalar, linear_scalar, quadratic_scalar};
    use core::arch::aarch64::*;

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn linear_neon(b: &[f64], c: &[f64], out: &mut [f64]) {
        let n = out.len();
        let half = vdupq_n_f64(0.5);
        let mut k = 0usize;
        while k + 2 <= n {
            let vb = vld1q_f64(b.as_ptr().add(k));
            let vc = vld1q_f64(c.as_ptr().add(k));
            vst1q_f64(out.as_mut_ptr().add(k), vmulq_f64(vaddq_f64(vb, vc), half));
            k += 2;
        }
        linear_scalar(&b[k..], &c[k..], &mut out[k..]);
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn cubic_neon(a: &[f64], b: &[f64], c: &[f64], d: &[f64], out: &mut [f64]) {
        let n = out.len();
        let nine = vdupq_n_f64(9.0);
        let sixteen = vdupq_n_f64(16.0);
        let mut k = 0usize;
        while k + 2 <= n {
            let va = vld1q_f64(a.as_ptr().add(k));
            let vb = vld1q_f64(b.as_ptr().add(k));
            let vc = vld1q_f64(c.as_ptr().add(k));
            let vd = vld1q_f64(d.as_ptr().add(k));
            let mut t = vaddq_f64(vnegq_f64(va), vmulq_f64(nine, vb));
            t = vaddq_f64(t, vmulq_f64(nine, vc));
            t = vsubq_f64(t, vd);
            vst1q_f64(out.as_mut_ptr().add(k), vdivq_f64(t, sixteen));
            k += 2;
        }
        cubic_scalar(&a[k..], &b[k..], &c[k..], &d[k..], &mut out[k..]);
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn quadratic_neon(a: &[f64], b: &[f64], c: &[f64], out: &mut [f64]) {
        let n = out.len();
        let six = vdupq_n_f64(6.0);
        let three = vdupq_n_f64(3.0);
        let eight = vdupq_n_f64(8.0);
        let mut k = 0usize;
        while k + 2 <= n {
            let va = vld1q_f64(a.as_ptr().add(k));
            let vb = vld1q_f64(b.as_ptr().add(k));
            let vc = vld1q_f64(c.as_ptr().add(k));
            let mut t = vaddq_f64(vnegq_f64(va), vmulq_f64(six, vb));
            t = vaddq_f64(t, vmulq_f64(three, vc));
            vst1q_f64(out.as_mut_ptr().add(k), vdivq_f64(t, eight));
            k += 2;
        }
        quadratic_scalar(&a[k..], &b[k..], &c[k..], &mut out[k..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stencil_run(stencil: RunStencil, off0: usize, step: usize, d1: usize, d3: usize) -> LineRun {
        LineRun {
            off0,
            step,
            cnt: 0, // unused by fill_preds; length comes from `preds`
            d1,
            d3,
            stencil,
        }
    }

    /// Scalar reference: the verbatim traversal expressions.
    fn expected(data: &[f64], run: &LineRun, n: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        let mut off = run.off0;
        for _ in 0..n {
            let p = match run.stencil {
                RunStencil::CopyLeft => data[off - run.d1],
                RunStencil::Interp(InterpKind::Linear) => {
                    (data[off - run.d1] + data[off + run.d1]) * 0.5
                }
                RunStencil::Interp(InterpKind::Cubic) => {
                    (-data[off - run.d3] + 9.0 * data[off - run.d1] + 9.0 * data[off + run.d1]
                        - data[off + run.d3])
                        / 16.0
                }
                RunStencil::Interp(InterpKind::Quadratic) => {
                    (-data[off - run.d3] + 6.0 * data[off - run.d1] + 3.0 * data[off + run.d1])
                        / 8.0
                }
            };
            out.push(p);
            off += run.step;
        }
        out
    }

    #[test]
    fn all_stencils_match_scalar_on_all_paths() {
        // Irregular values (not multiples of anything) with a few exact
        // zeros and sign flips to exercise the negation identity.
        let data: Vec<f64> = (0..600)
            .map(|i| {
                if i % 97 == 0 {
                    0.0
                } else {
                    ((i as f64) * 0.618).sin() * 1e3 * if i % 2 == 0 { 1.0 } else { -1.0 }
                }
            })
            .collect();
        let stencils = [
            RunStencil::Interp(InterpKind::Linear),
            RunStencil::Interp(InterpKind::Cubic),
            RunStencil::Interp(InterpKind::Quadratic),
            RunStencil::CopyLeft,
        ];
        for stencil in stencils {
            for (step, d1, d3) in [(2usize, 1usize, 3usize), (1, 7, 21), (5, 2, 6), (4, 2, 6)] {
                for n in [1usize, 2, 3, 4, 5, 8, 13, 64] {
                    let off0 = 30;
                    let run = stencil_run(stencil, off0, step, d1, d3);
                    let want = expected(&data, &run, n);
                    for path in supported_paths() {
                        let mut preds = vec![0f64; n];
                        fill_preds(path, &data, &run, &mut preds);
                        for k in 0..n {
                            assert_eq!(
                                preds[k].to_bits(),
                                want[k].to_bits(),
                                "{path} {stencil:?} step={step} n={n} lane {k}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn f32_inputs_convert_before_combining() {
        let data: Vec<f32> = (0..100).map(|i| (i as f32 * 0.31).cos() * 7.0).collect();
        let run = stencil_run(RunStencil::Interp(InterpKind::Cubic), 9, 2, 1, 3);
        let mut want = vec![0f64; 16];
        fill_preds(KernelPath::Scalar, &data, &run, &mut want);
        for path in supported_paths() {
            let mut preds = vec![0f64; 16];
            fill_preds(path, &data, &run, &mut preds);
            assert_eq!(
                preds.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                "{path}"
            );
        }
    }
}
