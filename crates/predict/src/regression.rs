//! Block-wise linear regression predictor (SZ2's second predictor).
//!
//! For a block `B` of a d-dimensional array, fit the affine model
//! `v(x) ≈ b0 + Σ_d b_d · x_d` by least squares over the block's own
//! coordinates. Because the design matrix is a regular grid, the normal
//! equations are diagonal after centring: each slope is
//! `cov(x_d, v) / var(x_d)` with closed-form `var(x_d)`, so fitting is a
//! single pass over the block.
//!
//! The fitted coefficients are quantized before use (both sides of the
//! codec must agree on the *same* model), mirroring SZ2's coefficient
//! encoding.

use qoz_tensor::{NdArray, Scalar, Shape};

/// An affine model over block-local coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionModel {
    /// Intercept at the block origin's centre of mass.
    pub intercept: f64,
    /// One slope per dimension (block-local coordinates).
    pub slopes: Vec<f64>,
}

impl RegressionModel {
    /// Fit the model to a dense block.
    pub fn fit<T: Scalar>(block: &NdArray<T>) -> Self {
        let shape = block.shape();
        let nd = shape.ndim();
        let n = block.len() as f64;

        // Mean of each coordinate over a full grid: (ext-1)/2.
        let coord_mean: Vec<f64> = (0..nd).map(|d| (shape.dim(d) as f64 - 1.0) / 2.0).collect();
        // Variance of coordinate d over the grid: (ext^2 - 1) / 12.
        let coord_var: Vec<f64> = (0..nd)
            .map(|d| {
                let e = shape.dim(d) as f64;
                (e * e - 1.0) / 12.0
            })
            .collect();

        let mut vmean = 0.0;
        for v in block.as_slice() {
            vmean += v.to_f64();
        }
        vmean /= n;

        let mut cov = vec![0.0f64; nd];
        for (i, idx) in shape.indices().enumerate() {
            let dv = block.as_slice()[i].to_f64() - vmean;
            for d in 0..nd {
                cov[d] += (idx[d] as f64 - coord_mean[d]) * dv;
            }
        }
        let slopes: Vec<f64> = (0..nd)
            .map(|d| {
                if coord_var[d] > 0.0 {
                    cov[d] / n / coord_var[d]
                } else {
                    0.0
                }
            })
            .collect();
        // Express the intercept at local origin for cheap evaluation.
        let intercept = vmean
            - slopes
                .iter()
                .zip(&coord_mean)
                .map(|(s, m)| s * m)
                .sum::<f64>();
        RegressionModel { intercept, slopes }
    }

    /// Evaluate the model at block-local coordinates.
    #[inline]
    pub fn predict(&self, idx: &[usize]) -> f64 {
        let mut v = self.intercept;
        for (d, &x) in idx.iter().enumerate() {
            v += self.slopes[d] * x as f64;
        }
        v
    }

    /// Quantize the coefficients to multiples of `step` so both codec
    /// sides share an identical model; returns the quantized model and
    /// the integer codes (intercept first).
    pub fn quantize(&self, step: f64) -> (RegressionModel, Vec<i64>) {
        assert!(step > 0.0);
        let q = |v: f64| (v / step).round() as i64;
        let mut codes = Vec::with_capacity(1 + self.slopes.len());
        codes.push(q(self.intercept));
        for &s in &self.slopes {
            codes.push(q(s));
        }
        let model = RegressionModel::from_codes(&codes, step);
        (model, codes)
    }

    /// Rebuild a model from quantized coefficient codes.
    pub fn from_codes(codes: &[i64], step: f64) -> RegressionModel {
        assert!(!codes.is_empty());
        RegressionModel {
            intercept: codes[0] as f64 * step,
            slopes: codes[1..].iter().map(|&c| c as f64 * step).collect(),
        }
    }

    /// Mean absolute prediction error of this model over a block.
    pub fn mean_abs_error<T: Scalar>(&self, block: &NdArray<T>) -> f64 {
        let shape: Shape = block.shape();
        let mut total = 0.0;
        for (i, idx) in shape.indices().enumerate() {
            total += (block.as_slice()[i].to_f64() - self.predict(&idx[..shape.ndim()])).abs();
        }
        total / block.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_exact_affine_2d() {
        let block = NdArray::from_fn(Shape::d2(6, 6), |i| {
            4.0 + 1.5 * i[0] as f64 - 0.75 * i[1] as f64
        });
        let m = RegressionModel::fit(&block);
        assert!((m.intercept - 4.0).abs() < 1e-10);
        assert!((m.slopes[0] - 1.5).abs() < 1e-10);
        assert!((m.slopes[1] + 0.75).abs() < 1e-10);
        assert!(m.mean_abs_error(&block) < 1e-10);
    }

    #[test]
    fn fit_recovers_exact_affine_3d() {
        let block = NdArray::from_fn(Shape::d3(4, 5, 6), |i| {
            -2.0 + 0.1 * i[0] as f64 + 0.2 * i[1] as f64 + 0.3 * i[2] as f64
        });
        let m = RegressionModel::fit(&block);
        assert!(m.mean_abs_error(&block) < 1e-10);
    }

    #[test]
    fn fit_minimizes_l2_for_noisy_data() {
        // Compare against a slightly perturbed model: the LSQ fit must
        // have no larger squared error.
        let block = NdArray::from_fn(Shape::d2(8, 8), |i| {
            1.0 + 0.5 * i[0] as f64 + ((i[0] * 7 + i[1] * 13) % 5) as f64 * 0.01
        });
        let m = RegressionModel::fit(&block);
        let sq = |model: &RegressionModel| {
            let mut s = 0.0;
            for (i, idx) in block.shape().indices().enumerate() {
                let d = block.as_slice()[i].to_f64() - model.predict(&idx[..2]);
                s += d * d;
            }
            s
        };
        let base = sq(&m);
        for delta in [-0.01, 0.01] {
            let mut pert = m.clone();
            pert.intercept += delta;
            assert!(sq(&pert) >= base);
            let mut pert = m.clone();
            pert.slopes[0] += delta;
            assert!(sq(&pert) >= base);
        }
    }

    #[test]
    fn quantized_roundtrip_matches() {
        let block = NdArray::from_fn(Shape::d2(6, 6), |i| {
            0.3 + 0.11 * i[0] as f64 + 0.07 * i[1] as f64
        });
        let m = RegressionModel::fit(&block);
        let (qm, codes) = m.quantize(1e-4);
        let rebuilt = RegressionModel::from_codes(&codes, 1e-4);
        assert_eq!(qm, rebuilt);
        assert!((qm.intercept - m.intercept).abs() <= 5e-5);
    }

    #[test]
    fn singleton_dim_slope_zero() {
        let block = NdArray::from_fn(Shape::d2(1, 8), |i| i[1] as f64);
        let m = RegressionModel::fit(&block);
        assert_eq!(m.slopes[0], 0.0);
        assert!((m.slopes[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_block_all_zero_slopes() {
        let block = NdArray::from_vec(Shape::d3(3, 3, 3), vec![7.0f32; 27]);
        let m = RegressionModel::fit(&block);
        assert!((m.intercept - 7.0).abs() < 1e-6);
        assert!(m.slopes.iter().all(|s| s.abs() < 1e-9));
    }
}
