//! Lorenzo extrapolation predictors (SZ2's default predictor).
//!
//! The Lorenzo predictor estimates a point from its already-processed
//! causal neighbours (the corner of the hypercube behind it):
//!
//! * 1D: `v[i-1]`
//! * 2D: `v[i-1,j] + v[i,j-1] - v[i-1,j-1]`
//! * 3D: the 7-term inclusion-exclusion over the unit cube.
//!
//! Out-of-range neighbours contribute 0, matching SZ2's behaviour at
//! array borders (the first point is predicted as 0 and typically lands
//! in the unpredictable stream).

use qoz_tensor::{Scalar, Shape};

/// Predict `data[idx]` from causal neighbours in row-major order.
///
/// `data` must contain *reconstructed* values at all causal positions.
pub fn lorenzo_predict<T: Scalar>(data: &[T], shape: Shape, idx: &[usize]) -> f64 {
    let nd = shape.ndim();
    debug_assert_eq!(idx.len(), nd);
    match nd {
        1 => {
            if idx[0] >= 1 {
                at(data, shape, &[idx[0] - 1])
            } else {
                0.0
            }
        }
        2 => {
            let (i, j) = (idx[0], idx[1]);
            let a = if i >= 1 {
                at(data, shape, &[i - 1, j])
            } else {
                0.0
            };
            let b = if j >= 1 {
                at(data, shape, &[i, j - 1])
            } else {
                0.0
            };
            let c = if i >= 1 && j >= 1 {
                at(data, shape, &[i - 1, j - 1])
            } else {
                0.0
            };
            a + b - c
        }
        3 => {
            let (i, j, k) = (idx[0], idx[1], idx[2]);
            let g = |di: usize, dj: usize, dk: usize| -> f64 {
                if i >= di && j >= dj && k >= dk {
                    at(data, shape, &[i - di, j - dj, k - dk])
                } else {
                    0.0
                }
            };
            g(1, 0, 0) + g(0, 1, 0) + g(0, 0, 1) - g(1, 1, 0) - g(1, 0, 1) - g(0, 1, 1) + g(1, 1, 1)
        }
        _ => {
            // 4D inclusion-exclusion, expressed recursively over subsets.
            let mut pred = 0.0;
            // Iterate non-empty subsets of dims; sign = (-1)^(|S|+1).
            for mask in 1u32..(1 << nd) {
                let bits = mask.count_ones();
                let mut ok = true;
                let mut nb = [0usize; qoz_tensor::MAX_NDIM];
                nb[..nd].copy_from_slice(idx);
                for d in 0..nd {
                    if mask & (1 << d) != 0 {
                        if nb[d] == 0 {
                            ok = false;
                            break;
                        }
                        nb[d] -= 1;
                    }
                }
                if ok {
                    let sign = if bits % 2 == 1 { 1.0 } else { -1.0 };
                    pred += sign * at(data, shape, &nb[..nd]);
                }
            }
            pred
        }
    }
}

/// Second-order Lorenzo prediction: the causal stencil from expanding
/// `1 - Π_d (1 - S_d)^2`, where `S_d` shifts by one along dimension `d`.
///
/// In 1D this is the linear extrapolation `2 v[i-1] - v[i-2]`; in higher
/// dimensions it adds the mixed second-difference corrections. SZ2.1
/// selects between first- and second-order Lorenzo and regression per
/// block; smooth data favours the second-order stencil, noisy data the
/// first-order one (second differences amplify noise).
pub fn lorenzo2_predict<T: Scalar>(data: &[T], shape: Shape, idx: &[usize]) -> f64 {
    let nd = shape.ndim();
    debug_assert_eq!(idx.len(), nd);
    // Per-dimension coefficients of (1 - s)^2 at offsets 0, 1, 2.
    const C: [f64; 3] = [1.0, -2.0, 1.0];
    let mut pred = 0.0;
    // Iterate all offset combinations in {0,1,2}^nd except all-zero.
    let combos = 3usize.pow(nd as u32);
    'outer: for mask in 1..combos {
        let mut m = mask;
        let mut nb = [0usize; qoz_tensor::MAX_NDIM];
        let mut coef = 1.0;
        for d in 0..nd {
            let a = m % 3;
            m /= 3;
            if idx[d] < a {
                continue 'outer; // neighbour out of range contributes 0
            }
            nb[d] = idx[d] - a;
            coef *= C[a];
        }
        // pred = sum of -(product) over non-zero offsets.
        pred -= coef * at(data, shape, &nb[..nd]);
    }
    pred
}

#[inline(always)]
fn at<T: Scalar>(data: &[T], shape: Shape, idx: &[usize]) -> f64 {
    data[shape.offset(idx)].to_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_tensor::NdArray;

    #[test]
    fn lorenzo_1d_is_previous_value() {
        let a = NdArray::from_fn(Shape::d1(10), |i| i[0] as f64 * 2.0);
        assert_eq!(lorenzo_predict(a.as_slice(), a.shape(), &[5]), 8.0);
        assert_eq!(lorenzo_predict(a.as_slice(), a.shape(), &[0]), 0.0);
    }

    #[test]
    fn lorenzo_2d_exact_for_bilinear() {
        // f(i,j) = 2i + 3j + 5: the 2D Lorenzo predictor reproduces any
        // function of the form a*i + b*j + c exactly (away from borders).
        let a = NdArray::from_fn(Shape::d2(8, 8), |i| {
            2.0 * i[0] as f64 + 3.0 * i[1] as f64 + 5.0
        });
        for i in 1..8 {
            for j in 1..8 {
                let p = lorenzo_predict(a.as_slice(), a.shape(), &[i, j]);
                assert!((p - a.get(&[i, j])).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn lorenzo_3d_exact_for_trilinear_plane() {
        let a = NdArray::from_fn(Shape::d3(5, 5, 5), |i| {
            1.5 * i[0] as f64 - 2.0 * i[1] as f64 + 0.25 * i[2] as f64
        });
        for i in 1..5 {
            for j in 1..5 {
                for k in 1..5 {
                    let p = lorenzo_predict(a.as_slice(), a.shape(), &[i, j, k]);
                    assert!((p - a.get(&[i, j, k])).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn border_neighbours_are_zero() {
        let a = NdArray::from_vec(Shape::d2(2, 2), vec![1.0f64, 2.0, 3.0, 4.0]);
        // (0,1): only j-neighbour exists.
        assert_eq!(lorenzo_predict(a.as_slice(), a.shape(), &[0, 1]), 1.0);
        // (1,0): only i-neighbour exists.
        assert_eq!(lorenzo_predict(a.as_slice(), a.shape(), &[1, 0]), 1.0);
        // (1,1): full stencil.
        assert_eq!(
            lorenzo_predict(a.as_slice(), a.shape(), &[1, 1]),
            2.0 + 3.0 - 1.0
        );
    }

    #[test]
    fn lorenzo2_1d_is_linear_extrapolation() {
        let a = NdArray::from_fn(Shape::d1(10), |i| 3.0 * i[0] as f64 + 1.0);
        // Exact for affine data away from the border.
        for i in 2..10 {
            let p = lorenzo2_predict(a.as_slice(), a.shape(), &[i]);
            assert!((p - a.get(&[i])).abs() < 1e-12);
        }
        // 2*v[0] - v[-1 out of range] at i=1.
        assert_eq!(lorenzo2_predict(a.as_slice(), a.shape(), &[1]), 2.0);
    }

    #[test]
    fn lorenzo2_2d_exact_for_bilinear_with_cross_term() {
        // f = 2i + 3j + 0.5*i*j is annihilated by the order-2 stencil;
        // first-order Lorenzo cannot reproduce the cross term exactly.
        let a = NdArray::from_fn(Shape::d2(8, 8), |i| {
            2.0 * i[0] as f64 + 3.0 * i[1] as f64 + 0.5 * (i[0] * i[1]) as f64
        });
        for i in 2..8 {
            for j in 2..8 {
                let p2 = lorenzo2_predict(a.as_slice(), a.shape(), &[i, j]);
                assert!((p2 - a.get(&[i, j])).abs() < 1e-10, "at ({i},{j})");
            }
        }
        let p1 = lorenzo_predict(a.as_slice(), a.shape(), &[4, 4]);
        assert!(
            (p1 - a.get(&[4, 4])).abs() > 0.1,
            "order-1 should miss the cross term"
        );
    }

    #[test]
    fn lorenzo2_3d_exact_for_trilinear() {
        let a = NdArray::from_fn(Shape::d3(6, 6, 6), |i| {
            1.0 + i[0] as f64 - 2.0 * i[1] as f64 + 0.5 * i[2] as f64 + 0.25 * (i[0] * i[1]) as f64
        });
        for i in 2..6 {
            for j in 2..6 {
                for k in 2..6 {
                    let p = lorenzo2_predict(a.as_slice(), a.shape(), &[i, j, k]);
                    assert!((p - a.get(&[i, j, k])).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn generic_4d_matches_3d_formula_on_3d_slice() {
        // Compare the subset-mask fallback against the explicit 3D stencil
        // by embedding a 3D array as 4D with a singleton leading dim.
        let a3 = NdArray::from_fn(Shape::d3(4, 4, 4), |i| (i[0] * 16 + i[1] * 4 + i[2]) as f64);
        let a4 = NdArray::from_vec(Shape::new(&[1, 4, 4, 4]), a3.as_slice().to_vec());
        for i in 1..4 {
            for j in 1..4 {
                for k in 1..4 {
                    let p3 = lorenzo_predict(a3.as_slice(), a3.shape(), &[i, j, k]);
                    let p4 = lorenzo_predict(a4.as_slice(), a4.shape(), &[0, i, j, k]);
                    assert!((p3 - p4).abs() < 1e-12);
                }
            }
        }
    }
}
