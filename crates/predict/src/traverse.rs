//! Multi-level interpolation traversal (the engine behind SZ3 and QoZ).
//!
//! The array is refined level by level. At level `l` the stride is
//! `s = 2^(l-1)`: points whose coordinates are all even multiples of `s`
//! are already reconstructed, and the level predicts every point with at
//! least one odd-multiple coordinate, one dimension at a time. After
//! level 1 completes, every point has been visited exactly once.
//!
//! The traversal is a pure function of `(shape, level, config)`; the
//! compressor and decompressor run the identical sequence of
//! `(offset, prediction)` callbacks, differing only in what they do at
//! each point (quantize vs. reconstruct). That symmetry is the error-bound
//! guarantee's foundation and is covered by tests below.

use crate::interp::{predict_line, DimOrder, InterpKind, LevelConfig};
use qoz_tensor::{Scalar, Shape, MAX_NDIM};

/// Number of interpolation levels needed to cover an array: the smallest
/// `L` (at least 1) with `2^L >= max_extent - 1`. Returns 0 only for a
/// single-point array.
pub fn max_level(shape: Shape) -> u32 {
    let m = shape.dims().iter().copied().max().unwrap_or(1);
    if m <= 1 {
        return 0;
    }
    let mut l = 1u32;
    while (1usize << l) < m - 1 {
        l += 1;
    }
    l
}

/// The grid spacing of the base (already-known) points for a traversal
/// that starts at `level`: `2^level`.
pub fn base_stride(level: u32) -> usize {
    1usize << level
}

/// Invoke `f` with the linear offset of every base-grid point: all
/// coordinates congruent to 0 modulo `stride`.
///
/// Visits points in row-major order over the base grid (last dimension
/// fastest), maintaining offsets incrementally: the inner loop advances
/// by `stride` elements (the last dimension is contiguous) and the outer
/// dimensions adjust the line offset by one stride product per step.
pub fn for_each_base_point(shape: Shape, stride: usize, mut f: impl FnMut(usize)) {
    assert!(stride > 0);
    let nd = shape.ndim();
    let last = nd - 1;
    let mut counts = [1usize; MAX_NDIM];
    for d in 0..nd {
        counts[d] = (shape.dim(d) - 1) / stride + 1;
    }
    let inner_cnt = counts[last];
    let mut idx = [0usize; MAX_NDIM];
    let mut line_off = 0usize;
    loop {
        let mut off = line_off;
        for _ in 0..inner_cnt {
            f(off);
            off += stride; // shape.stride(last) == 1
        }
        // Odometer over the outer dimensions, second-to-last fastest.
        let mut d = last;
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            idx[d] += 1;
            line_off += stride * shape.stride(d);
            if idx[d] < counts[d] {
                break;
            }
            idx[d] = 0;
            line_off -= counts[d] * stride * shape.stride(d);
        }
    }
}

/// Number of base-grid points for a shape/stride pair.
pub fn base_point_count(shape: Shape, stride: usize) -> usize {
    (0..shape.ndim())
        .map(|d| (shape.dim(d) - 1) / stride + 1)
        .product()
}

/// Run one interpolation level over `data`.
///
/// For every point predicted on this level, `f(data, offset, prediction)`
/// is called exactly once; the callback must write the reconstructed
/// value to `data[offset]` before returning (later predictions read it).
///
/// `level >= 1`; the level stride is `2^(level-1)`.
///
/// The traversal is line-oriented: each pass walks whole contiguous
/// lines along the innermost dimension with a fused per-kernel stencil
/// (offsets maintained incrementally, no multi-index materialization).
/// The visit order and the f64 arithmetic are exactly those of the
/// original per-point odometer, so compressed streams are byte-identical
/// (pinned by `tests/golden_bitstream.rs`).
pub fn traverse_level<T: Scalar>(
    data: &mut [T],
    shape: Shape,
    level: u32,
    cfg: LevelConfig,
    f: &mut impl FnMut(&mut [T], usize, f64),
) {
    assert!(level >= 1, "levels are numbered from 1");
    assert_eq!(data.len(), shape.len(), "buffer/shape mismatch");
    let s = 1usize << (level - 1);
    let nd = shape.ndim();

    for pass in 0..nd {
        let cur = match cfg.order {
            DimOrder::Ascending => pass,
            DimOrder::Descending => nd - 1 - pass,
        };
        let n_cur = shape.dim(cur);
        // Nothing to predict along this dimension at this stride.
        if n_cur <= s {
            continue;
        }
        // Allowed coordinates per dimension for this pass: the predicted
        // dimension walks the odd multiples of `s`; dimensions refined
        // earlier in this level sit on the full stride-s grid; the rest
        // only exist on the coarse stride-2s grid.
        let mut steps = [1usize; MAX_NDIM];
        let mut counts = [1usize; MAX_NDIM];
        let mut base = 0usize; // offset of the first predicted point
        for d in 0..nd {
            let refined_earlier = match cfg.order {
                DimOrder::Ascending => d < cur,
                DimOrder::Descending => d > cur,
            };
            let (start, step) = if d == cur {
                (s, 2 * s)
            } else if refined_earlier {
                (0, s)
            } else {
                (0, 2 * s)
            };
            steps[d] = step;
            counts[d] = (shape.dim(d) - 1 - start) / step + 1;
            base += start * shape.stride(d);
        }
        pass_lines(
            data, shape, cur, s, n_cur, &steps, &counts, base, cfg.kind, f,
        );
    }
}

/// One pass of [`traverse_level`]: iterate the outer dimensions with an
/// incremental-offset odometer and run a fused kernel along each
/// contiguous inner line.
#[allow(clippy::too_many_arguments)]
fn pass_lines<T: Scalar>(
    data: &mut [T],
    shape: Shape,
    cur: usize,
    s: usize,
    n_cur: usize,
    steps: &[usize; MAX_NDIM],
    counts: &[usize; MAX_NDIM],
    base: usize,
    kind: InterpKind,
    f: &mut impl FnMut(&mut [T], usize, f64),
) {
    let nd = shape.ndim();
    let last = nd - 1;
    let contiguous = cur == last;
    let stride_cur = shape.stride(cur);
    let mut idx = [0usize; MAX_NDIM];
    let mut line_off = base;
    loop {
        if contiguous {
            line_contiguous(data, line_off, s, n_cur, counts[last], kind, f);
        } else {
            // The coordinate along `cur` is fixed for the whole line, so
            // the stencil (and its boundary degradation) is chosen once.
            let x = s * (2 * idx[cur] + 1);
            line_strided(
                data,
                line_off,
                x,
                s,
                n_cur,
                stride_cur,
                counts[last],
                steps[last],
                kind,
                f,
            );
        }
        // Odometer over the outer dimensions, second-to-last fastest.
        let mut d = last;
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            idx[d] += 1;
            line_off += steps[d] * shape.stride(d);
            if idx[d] < counts[d] {
                break;
            }
            idx[d] = 0;
            line_off -= counts[d] * steps[d] * shape.stride(d);
        }
    }
}

/// Predict a line *along* the innermost dimension: points sit at odd
/// multiples of `s` (`x = s, 3s, 5s, ...`) with unit element stride, so
/// neighbours live at fixed relative offsets `±s`, `±3s`. The first and
/// last couple of points can lack far neighbours; they go through the
/// generic boundary-degrading [`predict_line`], the interior through a
/// branch-free fused stencil.
fn line_contiguous<T: Scalar>(
    data: &mut [T],
    line_off: usize,
    s: usize,
    n: usize,
    cnt: usize,
    kind: InterpKind,
    f: &mut impl FnMut(&mut [T], usize, f64),
) {
    let line_base = line_off - s;
    // Largest k with 2*s*k <= n-1; the full-stencil j-ranges derive from
    // it: point j sits at x = s*(2j+1), and e.g. `x + s < n` <=> `j < q`.
    let q = (n - 1) / (2 * s);
    let (lo, hi) = match kind {
        InterpKind::Linear => (0usize, q),
        InterpKind::Cubic => (1, q.saturating_sub(1)),
        InterpKind::Quadratic => (1, q),
    };
    let lo = lo.min(cnt);
    let hi = hi.clamp(lo, cnt);
    let mut j = 0usize;
    let mut off = line_off;
    while j < lo {
        let x = s * (2 * j + 1);
        let pred = predict_line(kind, x, s, n, |p| data[line_base + p].to_f64());
        f(data, off, pred);
        off += 2 * s;
        j += 1;
    }
    match kind {
        InterpKind::Linear => {
            while j < hi {
                let pred = (data[off - s].to_f64() + data[off + s].to_f64()) * 0.5;
                f(data, off, pred);
                off += 2 * s;
                j += 1;
            }
        }
        InterpKind::Cubic => {
            let s3 = 3 * s;
            while j < hi {
                let pred = (-data[off - s3].to_f64()
                    + 9.0 * data[off - s].to_f64()
                    + 9.0 * data[off + s].to_f64()
                    - data[off + s3].to_f64())
                    / 16.0;
                f(data, off, pred);
                off += 2 * s;
                j += 1;
            }
        }
        InterpKind::Quadratic => {
            let s3 = 3 * s;
            while j < hi {
                let pred = (-data[off - s3].to_f64()
                    + 6.0 * data[off - s].to_f64()
                    + 3.0 * data[off + s].to_f64())
                    / 8.0;
                f(data, off, pred);
                off += 2 * s;
                j += 1;
            }
        }
    }
    while j < cnt {
        let x = s * (2 * j + 1);
        let pred = predict_line(kind, x, s, n, |p| data[line_base + p].to_f64());
        f(data, off, pred);
        off += 2 * s;
        j += 1;
    }
}

/// Predict a contiguous line *across* the interpolated dimension: every
/// point on the line shares the same coordinate `x` along `cur`, so one
/// stencil (with neighbours at fixed offsets `±s*stride_cur`,
/// `±3s*stride_cur`) applies to the whole run. `x >= s` always holds
/// (predicted coordinates start at `s`), so only the right boundary can
/// degrade the kernel.
#[allow(clippy::too_many_arguments)]
fn line_strided<T: Scalar>(
    data: &mut [T],
    line_off: usize,
    x: usize,
    s: usize,
    n_cur: usize,
    stride_cur: usize,
    cnt: usize,
    step: usize,
    kind: InterpKind,
    f: &mut impl FnMut(&mut [T], usize, f64),
) {
    let d1 = s * stride_cur;
    let d3 = 3 * s * stride_cur;
    let mut off = line_off;
    if x + s < n_cur {
        let has_left2 = x >= 3 * s;
        match kind {
            InterpKind::Cubic if has_left2 && x + 3 * s < n_cur => {
                for _ in 0..cnt {
                    let pred = (-data[off - d3].to_f64()
                        + 9.0 * data[off - d1].to_f64()
                        + 9.0 * data[off + d1].to_f64()
                        - data[off + d3].to_f64())
                        / 16.0;
                    f(data, off, pred);
                    off += step;
                }
            }
            InterpKind::Quadratic if has_left2 => {
                for _ in 0..cnt {
                    let pred = (-data[off - d3].to_f64()
                        + 6.0 * data[off - d1].to_f64()
                        + 3.0 * data[off + d1].to_f64())
                        / 8.0;
                    f(data, off, pred);
                    off += step;
                }
            }
            _ => {
                for _ in 0..cnt {
                    let pred = (data[off - d1].to_f64() + data[off + d1].to_f64()) * 0.5;
                    f(data, off, pred);
                    off += step;
                }
            }
        }
    } else {
        // No right neighbour at this stride: copy the left one.
        for _ in 0..cnt {
            let pred = data[off - d1].to_f64();
            f(data, off, pred);
            off += step;
        }
    }
}

/// How every point of an interior [`LineRun`] is predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStencil {
    /// Full interpolation stencil of the given kind, neighbours at
    /// `±d1` (and `±d3` for the wide kinds).
    Interp(InterpKind),
    /// Degraded right boundary: copy the left neighbour at `-d1`.
    CopyLeft,
}

/// An interior segment of one traversal line: `cnt` predicted points at
/// offsets `off0, off0+step, ...`, all sharing one stencil whose
/// neighbours sit at the fixed relative offsets `±d1`/`±d3`.
///
/// Every neighbour's coordinate along the interpolated dimension is an
/// even multiple of the level stride — finalized by an earlier level or
/// pass — so the points of a run never read each other's writes and can
/// be predicted batch-wise in any order.
#[derive(Debug, Clone, Copy)]
pub struct LineRun {
    /// Offset of the first predicted point.
    pub off0: usize,
    /// Element step between consecutive predicted points.
    pub step: usize,
    /// Number of predicted points.
    pub cnt: usize,
    /// Relative offset of the near neighbours.
    pub d1: usize,
    /// Relative offset of the far neighbours.
    pub d3: usize,
    /// The stencil shared by every point of the run.
    pub stencil: RunStencil,
}

/// Consumer of the run-granular traversal [`traverse_level_runs`].
///
/// `point` receives boundary points one at a time with their prediction
/// already computed (via the degrading [`predict_line`]); `run` receives
/// interior segments and computes predictions itself (typically with the
/// vectorized stencils in [`crate::simd`]). Both must write the
/// reconstruction into `data` before returning, exactly like the
/// [`traverse_level`] callback.
pub trait RunSink<T: Scalar> {
    /// One boundary point with its prediction.
    fn point(&mut self, data: &mut [T], off: usize, pred: f64);
    /// One interior run; predictions are the sink's job.
    fn run(&mut self, data: &mut [T], run: &LineRun);
}

/// Run-granular mirror of [`traverse_level`]: the identical visit order
/// and stencil selection, but interior line segments are handed to the
/// sink as whole [`LineRun`]s instead of per-point callbacks, so block
/// kernels can process them lane-parallel. With a sink that evaluates
/// each run point-by-point left to right, the `(offset, prediction)`
/// sequence is exactly that of [`traverse_level`] (bit-for-bit; the
/// equivalence is asserted by `tests/simd_kernels.rs`).
pub fn traverse_level_runs<T: Scalar>(
    data: &mut [T],
    shape: Shape,
    level: u32,
    cfg: LevelConfig,
    sink: &mut impl RunSink<T>,
) {
    assert!(level >= 1, "levels are numbered from 1");
    assert_eq!(data.len(), shape.len(), "buffer/shape mismatch");
    let s = 1usize << (level - 1);
    let nd = shape.ndim();

    for pass in 0..nd {
        let cur = match cfg.order {
            DimOrder::Ascending => pass,
            DimOrder::Descending => nd - 1 - pass,
        };
        let n_cur = shape.dim(cur);
        if n_cur <= s {
            continue;
        }
        // Same per-pass geometry as `traverse_level` (see there).
        let mut steps = [1usize; MAX_NDIM];
        let mut counts = [1usize; MAX_NDIM];
        let mut base = 0usize;
        for d in 0..nd {
            let refined_earlier = match cfg.order {
                DimOrder::Ascending => d < cur,
                DimOrder::Descending => d > cur,
            };
            let (start, step) = if d == cur {
                (s, 2 * s)
            } else if refined_earlier {
                (0, s)
            } else {
                (0, 2 * s)
            };
            steps[d] = step;
            counts[d] = (shape.dim(d) - 1 - start) / step + 1;
            base += start * shape.stride(d);
        }
        pass_lines_runs(
            data, shape, cur, s, n_cur, &steps, &counts, base, cfg.kind, sink,
        );
    }
}

/// One pass of [`traverse_level_runs`]: the [`pass_lines`] odometer with
/// run-granular line kernels.
#[allow(clippy::too_many_arguments)]
fn pass_lines_runs<T: Scalar>(
    data: &mut [T],
    shape: Shape,
    cur: usize,
    s: usize,
    n_cur: usize,
    steps: &[usize; MAX_NDIM],
    counts: &[usize; MAX_NDIM],
    base: usize,
    kind: InterpKind,
    sink: &mut impl RunSink<T>,
) {
    let nd = shape.ndim();
    let last = nd - 1;
    let contiguous = cur == last;
    let stride_cur = shape.stride(cur);
    let mut idx = [0usize; MAX_NDIM];
    let mut line_off = base;
    loop {
        if contiguous {
            line_contiguous_runs(data, line_off, s, n_cur, counts[last], kind, sink);
        } else {
            let x = s * (2 * idx[cur] + 1);
            let stencil = if x + s < n_cur {
                let has_left2 = x >= 3 * s;
                match kind {
                    InterpKind::Cubic if has_left2 && x + 3 * s < n_cur => {
                        RunStencil::Interp(InterpKind::Cubic)
                    }
                    InterpKind::Quadratic if has_left2 => RunStencil::Interp(InterpKind::Quadratic),
                    _ => RunStencil::Interp(InterpKind::Linear),
                }
            } else {
                RunStencil::CopyLeft
            };
            sink.run(
                data,
                &LineRun {
                    off0: line_off,
                    step: steps[last],
                    cnt: counts[last],
                    d1: s * stride_cur,
                    d3: 3 * s * stride_cur,
                    stencil,
                },
            );
        }
        let mut d = last;
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            idx[d] += 1;
            line_off += steps[d] * shape.stride(d);
            if idx[d] < counts[d] {
                break;
            }
            idx[d] = 0;
            line_off -= counts[d] * steps[d] * shape.stride(d);
        }
    }
}

/// Run-granular version of [`line_contiguous`]: boundary head/tail
/// points (degraded stencils) go through `sink.point`, the full-stencil
/// interior becomes one [`LineRun`].
fn line_contiguous_runs<T: Scalar>(
    data: &mut [T],
    line_off: usize,
    s: usize,
    n: usize,
    cnt: usize,
    kind: InterpKind,
    sink: &mut impl RunSink<T>,
) {
    let line_base = line_off - s;
    let q = (n - 1) / (2 * s);
    let (lo, hi) = match kind {
        InterpKind::Linear => (0usize, q),
        InterpKind::Cubic => (1, q.saturating_sub(1)),
        InterpKind::Quadratic => (1, q),
    };
    let lo = lo.min(cnt);
    let hi = hi.clamp(lo, cnt);
    let mut j = 0usize;
    let mut off = line_off;
    while j < lo {
        let x = s * (2 * j + 1);
        let pred = predict_line(kind, x, s, n, |p| data[line_base + p].to_f64());
        sink.point(data, off, pred);
        off += 2 * s;
        j += 1;
    }
    if hi > lo {
        sink.run(
            data,
            &LineRun {
                off0: off,
                step: 2 * s,
                cnt: hi - lo,
                d1: s,
                d3: 3 * s,
                stencil: RunStencil::Interp(kind),
            },
        );
        off += (hi - lo) * 2 * s;
        j = hi;
    }
    while j < cnt {
        let x = s * (2 * j + 1);
        let pred = predict_line(kind, x, s, n, |p| data[line_base + p].to_f64());
        sink.point(data, off, pred);
        off += 2 * s;
        j += 1;
    }
}

/// Total number of points predicted on `level` (useful for sizing and for
/// the per-level error-bound bookkeeping in QoZ).
///
/// Closed form: each pass contributes the product of its per-dimension
/// coordinate counts — no buffer allocation, no shadow traversal.
pub fn level_point_count(shape: Shape, level: u32, cfg: LevelConfig) -> usize {
    assert!(level >= 1, "levels are numbered from 1");
    let s = 1usize << (level - 1);
    let nd = shape.ndim();
    let mut total = 0usize;
    for pass in 0..nd {
        let cur = match cfg.order {
            DimOrder::Ascending => pass,
            DimOrder::Descending => nd - 1 - pass,
        };
        if shape.dim(cur) <= s {
            continue;
        }
        let mut prod = 1usize;
        for d in 0..nd {
            let n = shape.dim(d);
            let refined_earlier = match cfg.order {
                DimOrder::Ascending => d < cur,
                DimOrder::Descending => d > cur,
            };
            prod *= if d == cur {
                (n - 1 - s) / (2 * s) + 1
            } else if refined_earlier {
                (n - 1) / s + 1
            } else {
                (n - 1) / (2 * s) + 1
            };
        }
        total += prod;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{DimOrder, InterpKind};
    use qoz_tensor::NdArray;

    fn full_traversal_offsets(shape: Shape, cfg: LevelConfig, start_level: u32) -> Vec<usize> {
        let mut visited = Vec::new();
        let mut data = vec![0f64; shape.len()];
        for level in (1..=start_level).rev() {
            traverse_level(&mut data, shape, level, cfg, &mut |_, off, _| {
                visited.push(off)
            });
        }
        visited
    }

    #[test]
    fn max_level_values() {
        assert_eq!(max_level(Shape::d1(1)), 0);
        assert_eq!(max_level(Shape::d1(2)), 1);
        assert_eq!(max_level(Shape::d1(9)), 3);
        assert_eq!(max_level(Shape::d1(10)), 4);
        assert_eq!(max_level(Shape::d2(9, 100)), 7);
        assert_eq!(max_level(Shape::d3(5, 5, 33)), 5);
    }

    #[test]
    fn coverage_exact_once_2d() {
        let shape = Shape::d2(9, 9);
        let l = max_level(shape);
        let stride = base_stride(l);
        let mut base = Vec::new();
        for_each_base_point(shape, stride, |off| base.push(off));
        assert_eq!(base.len(), 4); // corners of the 8-grid

        let cfg = LevelConfig::default();
        let mut seen = vec![0u32; shape.len()];
        for &b in &base {
            seen[b] += 1;
        }
        for off in full_traversal_offsets(shape, cfg, l) {
            seen[off] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1), "coverage not exactly-once");
    }

    #[test]
    fn coverage_exact_once_3d_non_pow2() {
        let shape = Shape::d3(7, 10, 5);
        let l = max_level(shape);
        let stride = base_stride(l);
        for cfg in LevelConfig::candidates() {
            let mut seen = vec![0u32; shape.len()];
            for_each_base_point(shape, stride, |off| seen[off] += 1);
            for off in full_traversal_offsets(shape, cfg, l) {
                seen[off] += 1;
            }
            assert!(seen.iter().all(|&c| c == 1), "coverage failure for {cfg:?}");
        }
    }

    #[test]
    fn coverage_exact_once_1d() {
        let shape = Shape::d1(100);
        let l = max_level(shape);
        let mut seen = vec![0u32; shape.len()];
        for_each_base_point(shape, base_stride(l), |off| seen[off] += 1);
        for off in full_traversal_offsets(shape, LevelConfig::default(), l) {
            seen[off] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn anchored_traversal_covers_with_small_levels() {
        // QoZ-style: anchors every 8, levels 3..1 only.
        let shape = Shape::d2(33, 17);
        let anchor = 8usize;
        let mut seen = vec![0u32; shape.len()];
        for_each_base_point(shape, anchor, |off| seen[off] += 1);
        for off in full_traversal_offsets(shape, LevelConfig::default(), 3) {
            seen[off] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn linear_traversal_reconstructs_affine_exactly() {
        // f(x,y) = 3x + 2y is exactly reproduced by linear interpolation:
        // predictions match true values, so writing predictions directly
        // (lossless "compression") must regenerate the field.
        let shape = Shape::d2(17, 17);
        let truth = NdArray::from_fn(shape, |i| 3.0 * i[0] as f64 + 2.0 * i[1] as f64);
        let l = max_level(shape);
        let mut data = vec![0f64; shape.len()];
        for_each_base_point(shape, base_stride(l), |off| {
            data[off] = truth.as_slice()[off];
        });
        let cfg = LevelConfig {
            kind: InterpKind::Linear,
            order: DimOrder::Ascending,
        };
        for level in (1..=l).rev() {
            traverse_level(&mut data, shape, level, cfg, &mut |d, off, pred| {
                d[off] = pred;
            });
        }
        for (a, b) in data.iter().zip(truth.as_slice()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn traversal_is_deterministic_across_runs() {
        let shape = Shape::d3(9, 8, 11);
        let cfg = LevelConfig {
            kind: InterpKind::Cubic,
            order: DimOrder::Descending,
        };
        let a = full_traversal_offsets(shape, cfg, max_level(shape));
        let b = full_traversal_offsets(shape, cfg, max_level(shape));
        assert_eq!(a, b);
    }

    #[test]
    fn orders_visit_same_set_differently() {
        let shape = Shape::d2(9, 9);
        let asc = full_traversal_offsets(
            shape,
            LevelConfig {
                kind: InterpKind::Linear,
                order: DimOrder::Ascending,
            },
            max_level(shape),
        );
        let desc = full_traversal_offsets(
            shape,
            LevelConfig {
                kind: InterpKind::Linear,
                order: DimOrder::Descending,
            },
            max_level(shape),
        );
        assert_ne!(asc, desc, "orders should differ in sequence");
        let mut a = asc.clone();
        let mut d = desc.clone();
        a.sort_unstable();
        d.sort_unstable();
        assert_eq!(a, d, "orders must cover the same point set");
    }

    #[test]
    fn level_point_counts_sum_to_total() {
        let shape = Shape::d2(9, 9);
        let l = max_level(shape);
        let cfg = LevelConfig::default();
        let total: usize = (1..=l).map(|lev| level_point_count(shape, lev, cfg)).sum();
        assert_eq!(total + base_point_count(shape, base_stride(l)), shape.len());
    }

    #[test]
    fn level_point_count_matches_shadow_traversal() {
        // The closed form must agree with an actual traversal (the old
        // implementation counted by traversing a zero buffer).
        let shapes = [
            Shape::d1(1),
            Shape::d1(2),
            Shape::d1(100),
            Shape::d2(9, 9),
            Shape::d2(33, 17),
            Shape::d2(1, 50),
            Shape::d3(7, 10, 5),
            Shape::d3(2, 2, 2),
            Shape::new(&[3, 5, 4, 6]),
        ];
        for shape in shapes {
            for cfg in LevelConfig::candidates() {
                for level in 1..=max_level(shape).max(1) + 1 {
                    let mut n = 0usize;
                    let mut dummy = vec![0f32; shape.len()];
                    traverse_level(&mut dummy, shape, level, cfg, &mut |_, _, _| n += 1);
                    assert_eq!(
                        level_point_count(shape, level, cfg),
                        n,
                        "closed form diverged for {shape:?} level {level} {cfg:?}"
                    );
                }
            }
        }
    }

    /// Run-granular traversal with a block sink must reproduce the exact
    /// `(offset, prediction)` sequence of the per-point traversal — the
    /// contract the fused engine paths stand on.
    #[test]
    fn run_traversal_matches_per_point_on_all_paths() {
        use crate::simd::{fill_preds, supported_paths, KernelPath, BLOCK};

        struct RecSink {
            path: KernelPath,
            seq: Vec<(usize, u64)>,
        }
        impl RunSink<f64> for RecSink {
            fn point(&mut self, data: &mut [f64], off: usize, pred: f64) {
                self.seq.push((off, pred.to_bits()));
                data[off] = pred * 0.5 + 1.0;
            }
            fn run(&mut self, data: &mut [f64], run: &LineRun) {
                let mut preds = [0f64; BLOCK];
                let mut done = 0usize;
                while done < run.cnt {
                    let m = (run.cnt - done).min(BLOCK);
                    let chunk = LineRun {
                        off0: run.off0 + done * run.step,
                        ..*run
                    };
                    fill_preds(self.path, data, &chunk, &mut preds[..m]);
                    let mut off = chunk.off0;
                    for &p in &preds[..m] {
                        self.seq.push((off, p.to_bits()));
                        data[off] = p * 0.5 + 1.0;
                        off += run.step;
                    }
                    done += m;
                }
            }
        }

        let shapes = [
            Shape::d1(2),
            Shape::d1(100),
            Shape::d2(9, 9),
            Shape::d2(33, 17),
            Shape::d2(1, 50),
            Shape::d3(7, 10, 5),
            Shape::new(&[3, 5, 4, 6]),
        ];
        for shape in shapes {
            for cfg in LevelConfig::candidates() {
                for level in 1..=max_level(shape).max(1) {
                    let init = |i: usize| ((i as f64) * 0.7).sin() * 100.0 + (i % 13) as f64 * 0.01;
                    let mut want_data: Vec<f64> = (0..shape.len()).map(init).collect();
                    let mut want = Vec::new();
                    traverse_level(&mut want_data, shape, level, cfg, &mut |d, off, pred| {
                        want.push((off, pred.to_bits()));
                        d[off] = pred * 0.5 + 1.0;
                    });
                    for path in supported_paths() {
                        let mut data: Vec<f64> = (0..shape.len()).map(init).collect();
                        let mut sink = RecSink {
                            path,
                            seq: Vec::new(),
                        };
                        traverse_level_runs(&mut data, shape, level, cfg, &mut sink);
                        assert_eq!(
                            sink.seq, want,
                            "sequence diverged: {shape:?} level {level} {cfg:?} {path}"
                        );
                        assert_eq!(
                            data, want_data,
                            "buffer diverged: {shape:?} level {level} {cfg:?} {path}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lowest_level_holds_majority_of_points() {
        // Paper: level 1 holds 75% of points in 2D, 87.5% in 3D.
        let shape = Shape::d2(65, 65);
        let cfg = LevelConfig::default();
        let l1 = level_point_count(shape, 1, cfg);
        let frac = l1 as f64 / shape.len() as f64;
        assert!((frac - 0.75).abs() < 0.03, "level-1 fraction {frac}");

        let shape3 = Shape::d3(33, 33, 33);
        let l1 = level_point_count(shape3, 1, cfg);
        let frac = l1 as f64 / shape3.len() as f64;
        assert!((frac - 0.875).abs() < 0.03, "level-1 fraction 3D {frac}");
    }
}
