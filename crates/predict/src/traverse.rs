//! Multi-level interpolation traversal (the engine behind SZ3 and QoZ).
//!
//! The array is refined level by level. At level `l` the stride is
//! `s = 2^(l-1)`: points whose coordinates are all even multiples of `s`
//! are already reconstructed, and the level predicts every point with at
//! least one odd-multiple coordinate, one dimension at a time. After
//! level 1 completes, every point has been visited exactly once.
//!
//! The traversal is a pure function of `(shape, level, config)`; the
//! compressor and decompressor run the identical sequence of
//! `(offset, prediction)` callbacks, differing only in what they do at
//! each point (quantize vs. reconstruct). That symmetry is the error-bound
//! guarantee's foundation and is covered by tests below.

use crate::interp::{predict_line, LevelConfig};
use qoz_tensor::{Scalar, Shape, MAX_NDIM};

/// Number of interpolation levels needed to cover an array: the smallest
/// `L` (at least 1) with `2^L >= max_extent - 1`. Returns 0 only for a
/// single-point array.
pub fn max_level(shape: Shape) -> u32 {
    let m = shape.dims().iter().copied().max().unwrap_or(1);
    if m <= 1 {
        return 0;
    }
    let mut l = 1u32;
    while (1usize << l) < m - 1 {
        l += 1;
    }
    l
}

/// The grid spacing of the base (already-known) points for a traversal
/// that starts at `level`: `2^level`.
pub fn base_stride(level: u32) -> usize {
    1usize << level
}

/// Invoke `f` with the linear offset of every base-grid point: all
/// coordinates congruent to 0 modulo `stride`.
pub fn for_each_base_point(shape: Shape, stride: usize, mut f: impl FnMut(usize)) {
    assert!(stride > 0);
    let nd = shape.ndim();
    let counts: Vec<usize> = (0..nd).map(|d| (shape.dim(d) - 1) / stride + 1).collect();
    let grid = Shape::new(&counts);
    for gidx in grid.indices() {
        let mut off = 0;
        for d in 0..nd {
            off += gidx[d] * stride * shape.stride(d);
        }
        f(off);
    }
}

/// Number of base-grid points for a shape/stride pair.
pub fn base_point_count(shape: Shape, stride: usize) -> usize {
    (0..shape.ndim())
        .map(|d| (shape.dim(d) - 1) / stride + 1)
        .product()
}

/// Run one interpolation level over `data`.
///
/// For every point predicted on this level, `f(data, offset, prediction)`
/// is called exactly once; the callback must write the reconstructed
/// value to `data[offset]` before returning (later predictions read it).
///
/// `level >= 1`; the level stride is `2^(level-1)`.
pub fn traverse_level<T: Scalar>(
    data: &mut [T],
    shape: Shape,
    level: u32,
    cfg: LevelConfig,
    f: &mut impl FnMut(&mut [T], usize, f64),
) {
    assert!(level >= 1, "levels are numbered from 1");
    assert_eq!(data.len(), shape.len(), "buffer/shape mismatch");
    let s = 1usize << (level - 1);
    let nd = shape.ndim();
    let order = cfg.order.dims(nd);

    for (pass, &cur) in order.iter().enumerate() {
        let n_cur = shape.dim(cur);
        // Nothing to predict along this dimension at this stride.
        if n_cur <= s {
            continue;
        }
        // Allowed coordinates per dimension for this pass.
        let mut starts = [0usize; MAX_NDIM];
        let mut steps = [1usize; MAX_NDIM];
        for d in 0..nd {
            if d == cur {
                starts[d] = s;
                steps[d] = 2 * s;
            } else if order[..pass].contains(&d) {
                // Refined earlier in this level: full stride-s grid.
                starts[d] = 0;
                steps[d] = s;
            } else {
                // Not yet refined: only the coarse stride-2s grid exists.
                starts[d] = 0;
                steps[d] = 2 * s;
            }
        }

        // Row-major odometer over the allowed coordinates.
        let counts: Vec<usize> = (0..nd)
            .map(|d| {
                let n = shape.dim(d);
                if starts[d] >= n {
                    0
                } else {
                    (n - 1 - starts[d]) / steps[d] + 1
                }
            })
            .collect();
        if counts.contains(&0) {
            continue;
        }
        let grid = Shape::new(&counts);
        let stride_cur = shape.stride(cur);
        for gidx in grid.indices() {
            let mut off = 0usize;
            let mut x = 0usize;
            for d in 0..nd {
                let coord = starts[d] + gidx[d] * steps[d];
                off += coord * shape.stride(d);
                if d == cur {
                    x = coord;
                }
            }
            let line_base = off - x * stride_cur;
            let pred = predict_line(cfg.kind, x, s, n_cur, |p| {
                data[line_base + p * stride_cur].to_f64()
            });
            f(data, off, pred);
        }
    }
}

/// Total number of points predicted on `level` (useful for sizing and for
/// the per-level error-bound bookkeeping in QoZ).
pub fn level_point_count(shape: Shape, level: u32, cfg: LevelConfig) -> usize {
    let mut count = 0usize;
    // Cheap shadow traversal over a zero buffer.
    let mut dummy = vec![f32::zero(); shape.len()];
    traverse_level(&mut dummy, shape, level, cfg, &mut |_, _, _| count += 1);
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{DimOrder, InterpKind};
    use qoz_tensor::NdArray;

    fn full_traversal_offsets(shape: Shape, cfg: LevelConfig, start_level: u32) -> Vec<usize> {
        let mut visited = Vec::new();
        let mut data = vec![0f64; shape.len()];
        for level in (1..=start_level).rev() {
            traverse_level(&mut data, shape, level, cfg, &mut |_, off, _| {
                visited.push(off)
            });
        }
        visited
    }

    #[test]
    fn max_level_values() {
        assert_eq!(max_level(Shape::d1(1)), 0);
        assert_eq!(max_level(Shape::d1(2)), 1);
        assert_eq!(max_level(Shape::d1(9)), 3);
        assert_eq!(max_level(Shape::d1(10)), 4);
        assert_eq!(max_level(Shape::d2(9, 100)), 7);
        assert_eq!(max_level(Shape::d3(5, 5, 33)), 5);
    }

    #[test]
    fn coverage_exact_once_2d() {
        let shape = Shape::d2(9, 9);
        let l = max_level(shape);
        let stride = base_stride(l);
        let mut base = Vec::new();
        for_each_base_point(shape, stride, |off| base.push(off));
        assert_eq!(base.len(), 4); // corners of the 8-grid

        let cfg = LevelConfig::default();
        let mut seen = vec![0u32; shape.len()];
        for &b in &base {
            seen[b] += 1;
        }
        for off in full_traversal_offsets(shape, cfg, l) {
            seen[off] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1), "coverage not exactly-once");
    }

    #[test]
    fn coverage_exact_once_3d_non_pow2() {
        let shape = Shape::d3(7, 10, 5);
        let l = max_level(shape);
        let stride = base_stride(l);
        for cfg in LevelConfig::candidates() {
            let mut seen = vec![0u32; shape.len()];
            for_each_base_point(shape, stride, |off| seen[off] += 1);
            for off in full_traversal_offsets(shape, cfg, l) {
                seen[off] += 1;
            }
            assert!(seen.iter().all(|&c| c == 1), "coverage failure for {cfg:?}");
        }
    }

    #[test]
    fn coverage_exact_once_1d() {
        let shape = Shape::d1(100);
        let l = max_level(shape);
        let mut seen = vec![0u32; shape.len()];
        for_each_base_point(shape, base_stride(l), |off| seen[off] += 1);
        for off in full_traversal_offsets(shape, LevelConfig::default(), l) {
            seen[off] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn anchored_traversal_covers_with_small_levels() {
        // QoZ-style: anchors every 8, levels 3..1 only.
        let shape = Shape::d2(33, 17);
        let anchor = 8usize;
        let mut seen = vec![0u32; shape.len()];
        for_each_base_point(shape, anchor, |off| seen[off] += 1);
        for off in full_traversal_offsets(shape, LevelConfig::default(), 3) {
            seen[off] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn linear_traversal_reconstructs_affine_exactly() {
        // f(x,y) = 3x + 2y is exactly reproduced by linear interpolation:
        // predictions match true values, so writing predictions directly
        // (lossless "compression") must regenerate the field.
        let shape = Shape::d2(17, 17);
        let truth = NdArray::from_fn(shape, |i| 3.0 * i[0] as f64 + 2.0 * i[1] as f64);
        let l = max_level(shape);
        let mut data = vec![0f64; shape.len()];
        for_each_base_point(shape, base_stride(l), |off| {
            data[off] = truth.as_slice()[off];
        });
        let cfg = LevelConfig {
            kind: InterpKind::Linear,
            order: DimOrder::Ascending,
        };
        for level in (1..=l).rev() {
            traverse_level(&mut data, shape, level, cfg, &mut |d, off, pred| {
                d[off] = pred;
            });
        }
        for (a, b) in data.iter().zip(truth.as_slice()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn traversal_is_deterministic_across_runs() {
        let shape = Shape::d3(9, 8, 11);
        let cfg = LevelConfig {
            kind: InterpKind::Cubic,
            order: DimOrder::Descending,
        };
        let a = full_traversal_offsets(shape, cfg, max_level(shape));
        let b = full_traversal_offsets(shape, cfg, max_level(shape));
        assert_eq!(a, b);
    }

    #[test]
    fn orders_visit_same_set_differently() {
        let shape = Shape::d2(9, 9);
        let asc = full_traversal_offsets(
            shape,
            LevelConfig {
                kind: InterpKind::Linear,
                order: DimOrder::Ascending,
            },
            max_level(shape),
        );
        let desc = full_traversal_offsets(
            shape,
            LevelConfig {
                kind: InterpKind::Linear,
                order: DimOrder::Descending,
            },
            max_level(shape),
        );
        assert_ne!(asc, desc, "orders should differ in sequence");
        let mut a = asc.clone();
        let mut d = desc.clone();
        a.sort_unstable();
        d.sort_unstable();
        assert_eq!(a, d, "orders must cover the same point set");
    }

    #[test]
    fn level_point_counts_sum_to_total() {
        let shape = Shape::d2(9, 9);
        let l = max_level(shape);
        let cfg = LevelConfig::default();
        let total: usize = (1..=l).map(|lev| level_point_count(shape, lev, cfg)).sum();
        assert_eq!(total + base_point_count(shape, base_stride(l)), shape.len());
    }

    #[test]
    fn lowest_level_holds_majority_of_points() {
        // Paper: level 1 holds 75% of points in 2D, 87.5% in 3D.
        let shape = Shape::d2(65, 65);
        let cfg = LevelConfig::default();
        let l1 = level_point_count(shape, 1, cfg);
        let frac = l1 as f64 / shape.len() as f64;
        assert!((frac - 0.75).abs() < 0.03, "level-1 fraction {frac}");

        let shape3 = Shape::d3(33, 33, 33);
        let l1 = level_point_count(shape3, 1, cfg);
        let frac = l1 as f64 / shape3.len() as f64;
        assert!((frac - 0.875).abs() < 0.03, "level-1 fraction 3D {frac}");
    }
}
