//! Data predictors for error-bounded lossy compression.
//!
//! Prediction is the core of the SZ compression model: each point is
//! predicted from already-reconstructed neighbours and only the quantized
//! residual is stored. This crate implements every predictor the paper's
//! compressors need:
//!
//! * [`interp`] — 1D linear and cubic-spline interpolation kernels with
//!   boundary fallbacks (paper §V-A),
//! * [`traverse`] — the multi-level interpolation traversal engine shared
//!   by the SZ3 baseline (global, unbounded span) and QoZ (anchored,
//!   level-adapted). Compression and decompression use the *same*
//!   deterministic traversal, which is what guarantees symmetric
//!   reconstruction,
//! * [`lorenzo`] — 1/2/3D Lorenzo extrapolation (SZ2's default),
//! * [`regression`] — block-wise linear regression (SZ2's second
//!   predictor).

pub mod interp;
pub mod lorenzo;
pub mod regression;
pub mod simd;
pub mod traverse;

pub use interp::{DimOrder, InterpKind, LevelConfig};
pub use lorenzo::{lorenzo2_predict, lorenzo_predict};
pub use regression::RegressionModel;
pub use traverse::{
    base_point_count, base_stride, for_each_base_point, level_point_count, max_level,
    traverse_level, traverse_level_runs, LineRun, RunSink, RunStencil,
};
