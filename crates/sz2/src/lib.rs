//! SZ2.1-style error-bounded lossy compressor (baseline).
//!
//! SZ2 (Liang et al., IEEE Big Data'18) splits the array into small
//! blocks and, per block, selects among three predictors:
//!
//! * the **first-order Lorenzo** extrapolator (causal neighbour stencil),
//! * the **second-order Lorenzo** stencil (adds curvature/cross terms),
//! * a **block-wise linear regression** model whose quantized
//!   coefficients ship with the stream.
//!
//! Residuals are quantized with the shared linear-scale quantizer and
//! entropy-coded with the shared Huffman+LZSS backend, so the comparison
//! against SZ3/QoZ isolates the *prediction* model exactly as the paper's
//! evaluation does. Unlike the interpolation compressors, SZ2 always
//! predicts from immediate neighbours, which is why its errors show fewer
//! long-range artifacts (paper Fig. 4) at the cost of lower compression
//! ratios on smooth data.

use qoz_codec::stream::{self, Compressor, CompressorId, ErrorBound, Header};
use qoz_codec::{ByteReader, ByteWriter, CodecError, LinearQuantizer, Result};
use qoz_predict::{lorenzo2_predict, lorenzo_predict, RegressionModel};
use qoz_tensor::{NdArray, Region, Scalar, Shape};

/// Per-rank default block side (SZ2 uses small blocks: 6³ in 3D).
fn default_block_side(ndim: usize) -> usize {
    match ndim {
        1 => 32,
        2 => 12,
        _ => 6,
    }
}

/// Coefficient quantization step relative to the error bound. SZ2 stores
/// regression coefficients with precision proportional to the bound so
/// the model itself never consumes more accuracy than the data budget.
fn coef_step(abs_eb: f64, block_side: usize) -> f64 {
    abs_eb / block_side as f64
}

/// Predictor selected for one block.
///
/// SZ2.1's hybrid model: first-order Lorenzo for noisy regions,
/// second-order Lorenzo for smooth regions with curvature, block-wise
/// linear regression where the field is locally affine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockPredictor {
    Lorenzo,
    Lorenzo2,
    Regression,
}

impl BlockPredictor {
    fn code(self) -> u32 {
        match self {
            BlockPredictor::Lorenzo => 0,
            BlockPredictor::Lorenzo2 => 1,
            BlockPredictor::Regression => 2,
        }
    }

    fn from_code(c: u32) -> Result<Self> {
        Ok(match c {
            0 => BlockPredictor::Lorenzo,
            1 => BlockPredictor::Lorenzo2,
            2 => BlockPredictor::Regression,
            _ => return Err(CodecError::Corrupt("bad block predictor code")),
        })
    }
}

/// The SZ2.1 baseline compressor.
#[derive(Debug, Clone, Default)]
pub struct Sz2 {
    /// Block side override (`None` = rank default).
    pub block_side: Option<usize>,
}

impl Sz2 {
    /// Typed compression entry point.
    pub fn compress_typed<T: Scalar>(&self, data: &NdArray<T>, bound: ErrorBound) -> Vec<u8> {
        let abs_eb = bound.absolute(data);
        let shape = data.shape();
        let side = self.block_side.unwrap_or(default_block_side(shape.ndim()));
        let blocks = Region::tile(shape, side);
        let quant = LinearQuantizer::new(abs_eb);
        let step = coef_step(abs_eb, side);

        let mut work = data.clone();
        let mut bins: Vec<u32> = Vec::with_capacity(data.len());
        let mut unpred = ByteWriter::new();
        let mut selector_codes: Vec<u32> = Vec::with_capacity(blocks.len());
        let mut coef_codes: Vec<i64> = Vec::new();

        for region in &blocks {
            // Decide the predictor on the ORIGINAL block (both sides see
            // the same choice because it is stored explicitly).
            let block = data.extract_region(region);
            let (model, codes) = {
                let fitted = RegressionModel::fit(&block);
                fitted.quantize(step)
            };
            let choice = select_predictor(data, region, &model, abs_eb);
            selector_codes.push(choice.code());
            if choice == BlockPredictor::Regression {
                coef_codes.extend_from_slice(&codes);
            }

            // Quantize the block in row-major order against the chosen
            // predictor, writing reconstructions into `work`.
            let nd = shape.ndim();
            let sub = Shape::new(region.size());
            for local in sub.indices() {
                let mut gidx = [0usize; qoz_tensor::MAX_NDIM];
                for d in 0..nd {
                    gidx[d] = region.origin()[d] + local[d];
                }
                let off = shape.offset(&gidx[..nd]);
                let pred = match choice {
                    BlockPredictor::Regression => model.predict(&local[..nd]),
                    BlockPredictor::Lorenzo => lorenzo_predict(work.as_slice(), shape, &gidx[..nd]),
                    BlockPredictor::Lorenzo2 => {
                        lorenzo2_predict(work.as_slice(), shape, &gidx[..nd])
                    }
                };
                let v = work.as_slice()[off];
                let qz = quant.quantize(v, pred);
                if qz.code == 0 {
                    unpred.put_bytes(&v.to_le_bytes_vec());
                }
                bins.push(qz.code);
                work.as_mut_slice()[off] = qz.reconstructed;
            }
        }

        // Serialize: header, block side, selector bitmap, coefficients,
        // bins, unpredictables.
        let mut w = ByteWriter::with_capacity(data.len() / 4 + 64);
        stream::write_header(
            &mut w,
            &Header {
                compressor: CompressorId::Sz2,
                scalar_tag: T::TYPE_TAG,
                shape,
                abs_eb,
                temporal: None,
            },
        );
        w.put_varint(side as u64);
        w.put_len_prefixed(&qoz_codec::encode_bins(&selector_codes));
        let mut coefs = ByteWriter::new();
        for &c in &coef_codes {
            coefs.put_varint(zigzag(c));
        }
        w.put_len_prefixed(&qoz_codec::lossless_compress(&coefs.finish()));
        w.put_len_prefixed(&qoz_codec::encode_bins(&bins));
        w.put_len_prefixed(&qoz_codec::lossless_compress(&unpred.finish()));
        w.finish()
    }

    /// Typed decompression entry point.
    pub fn decompress_typed<T: Scalar>(&self, blob: &[u8]) -> Result<NdArray<T>> {
        let mut r = ByteReader::new(blob);
        let header = stream::read_header(&mut r)?;
        if header.temporal.is_some() {
            return Err(CodecError::Corrupt(
                "temporal chain member needs chain decode",
            ));
        }
        if header.compressor != CompressorId::Sz2 {
            return Err(CodecError::Corrupt("not an SZ2 stream"));
        }
        if header.scalar_tag != T::TYPE_TAG {
            return Err(CodecError::Corrupt("scalar type mismatch"));
        }
        let shape = header.shape;
        let side = r.get_varint()? as usize;
        if side == 0 || side > 1 << 20 {
            return Err(CodecError::Corrupt("bad block side"));
        }
        let selector_codes = qoz_codec::decode_bins(r.get_len_prefixed()?)?;
        let coef_bytes = qoz_codec::lossless_decompress(r.get_len_prefixed()?)?;
        let bins = qoz_codec::decode_bins(r.get_len_prefixed()?)?;
        let unpred = qoz_codec::lossless_decompress(r.get_len_prefixed()?)?;

        let blocks = Region::tile(shape, side);
        if bins.len() != shape.len() {
            return Err(CodecError::Corrupt("bin count mismatch"));
        }
        if selector_codes.len() != blocks.len() {
            return Err(CodecError::Corrupt("selector count mismatch"));
        }
        let mut coef_reader = ByteReader::new(&coef_bytes);
        let mut unpred_reader = ByteReader::new(&unpred);
        let quant = LinearQuantizer::new(header.abs_eb);
        let step = coef_step(header.abs_eb, side);
        let nd = shape.ndim();
        let n_coefs = nd + 1;

        let mut work = NdArray::<T>::zeros(shape);
        let mut bin_pos = 0usize;
        for (region, &sel) in blocks.iter().zip(&selector_codes) {
            let choice = BlockPredictor::from_code(sel)?;
            let model = if choice == BlockPredictor::Regression {
                let mut codes = Vec::with_capacity(n_coefs);
                for _ in 0..n_coefs {
                    codes.push(unzigzag(coef_reader.get_varint()?));
                }
                Some(RegressionModel::from_codes(&codes, step))
            } else {
                None
            };
            let sub = Shape::new(region.size());
            for local in sub.indices() {
                let mut gidx = [0usize; qoz_tensor::MAX_NDIM];
                for d in 0..nd {
                    gidx[d] = region.origin()[d] + local[d];
                }
                let off = shape.offset(&gidx[..nd]);
                let pred = match (&model, choice) {
                    (Some(m), _) => m.predict(&local[..nd]),
                    (None, BlockPredictor::Lorenzo2) => {
                        lorenzo2_predict(work.as_slice(), shape, &gidx[..nd])
                    }
                    (None, _) => lorenzo_predict(work.as_slice(), shape, &gidx[..nd]),
                };
                let code = bins[bin_pos];
                bin_pos += 1;
                if code == 0 {
                    let b = unpred_reader.get_bytes(T::BYTES)?;
                    work.as_mut_slice()[off] = T::from_le_slice(b);
                } else if code >= quant.num_codes() {
                    return Err(CodecError::Corrupt("bin code out of range"));
                } else {
                    work.as_mut_slice()[off] = quant.reconstruct(code, pred);
                }
            }
        }
        Ok(work)
    }
}

/// Estimate which predictor fits a block better by probing a subset of
/// points on the original data (SZ2's sampling-based selection).
fn select_predictor<T: Scalar>(
    data: &NdArray<T>,
    region: &Region,
    model: &RegressionModel,
    abs_eb: f64,
) -> BlockPredictor {
    let shape = data.shape();
    let nd = shape.ndim();
    let sub = Shape::new(region.size());
    let mut l1_err = 0.0f64;
    let mut l2_err = 0.0f64;
    let mut reg_err = 0.0f64;
    // Probe every 3rd point for speed; the Lorenzo variants are
    // approximated on the original values (as SZ2 does during its
    // selection phase).
    for (k, local) in sub.indices().enumerate() {
        if k % 3 != 0 {
            continue;
        }
        let mut gidx = [0usize; qoz_tensor::MAX_NDIM];
        for d in 0..nd {
            gidx[d] = region.origin()[d] + local[d];
        }
        let v = data.get(&gidx[..nd]).to_f64();
        l1_err += (v - lorenzo_predict(data.as_slice(), shape, &gidx[..nd])).abs();
        l2_err += (v - lorenzo2_predict(data.as_slice(), shape, &gidx[..nd])).abs();
        reg_err += (v - model.predict(&local[..nd])).abs();
    }
    // The probes above run on noise-free ORIGINAL values, but execution
    // predicts from reconstructed neighbours carrying up to `abs_eb` of
    // quantization noise, which the stencils amplify by the RMS of their
    // coefficients: sqrt(2^d - 1) for first-order Lorenzo, sqrt(6^d - 1)
    // for second-order. Without this term the second-order stencil looks
    // deceptively good at coarse bounds and destroys the compression
    // ratio (its coefficient mass is ~6x larger).
    let noise = 0.5 * abs_eb;
    let amp1 = ((2f64.powi(nd as i32)) - 1.0).sqrt();
    let amp2 = ((6f64.powi(nd as i32)) - 1.0).sqrt();
    let probes = (sub.len() / 3).max(1) as f64;
    let l1 = l1_err + noise * amp1 * probes;
    let l2 = l2_err + noise * amp2 * probes;
    let rg = reg_err + noise * probes; // quantized-coefficient noise ~ eb
    if rg <= l1 && rg <= l2 {
        BlockPredictor::Regression
    } else if l2 < l1 {
        BlockPredictor::Lorenzo2
    } else {
        BlockPredictor::Lorenzo
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

impl<T: Scalar> Compressor<T> for Sz2 {
    fn id(&self) -> CompressorId {
        CompressorId::Sz2
    }
    fn compress(&self, data: &NdArray<T>, bound: ErrorBound) -> Vec<u8> {
        self.compress_typed(data, bound)
    }
    fn decompress(&self, blob: &[u8]) -> Result<NdArray<T>> {
        self.decompress_typed(blob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_datagen::{Dataset, SizeClass};
    use qoz_metrics::verify_error_bound;

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN + 1] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn roundtrip_respects_bound_all_datasets() {
        for ds in Dataset::ALL {
            let data = ds.generate(SizeClass::Tiny, 0);
            let bound = ErrorBound::Rel(1e-3);
            let abs = bound.absolute(&data);
            let blob = Sz2::default().compress_typed(&data, bound);
            let recon = Sz2::default().decompress_typed::<f32>(&blob).unwrap();
            assert_eq!(
                verify_error_bound(&data, &recon, abs),
                None,
                "{}",
                ds.name()
            );
        }
    }

    #[test]
    fn f64_roundtrip() {
        let data = NdArray::from_fn(Shape::d2(40, 40), |i| {
            (i[0] as f64 * 0.17).sin() + i[1] as f64 * 0.03
        });
        let blob = Sz2::default().compress_typed(&data, ErrorBound::Abs(1e-5));
        let recon = Sz2::default().decompress_typed::<f64>(&blob).unwrap();
        assert!(data.max_abs_diff(&recon) <= 1e-5);
    }

    #[test]
    fn regression_chosen_for_gradient_blocks() {
        // A pure gradient is exactly affine: regression should dominate
        // and the whole stream should compress extremely well.
        let data = NdArray::from_fn(Shape::d2(48, 48), |i| {
            (i[0] as f32) * 0.5 - (i[1] as f32) * 0.25
        });
        let blob = Sz2::default().compress_typed(&data, ErrorBound::Abs(1e-4));
        let recon = Sz2::default().decompress_typed::<f32>(&blob).unwrap();
        assert!(data.max_abs_diff(&recon) <= 1e-4);
        let cr = (data.len() * 4) as f64 / blob.len() as f64;
        assert!(cr > 8.0, "gradient should compress well, CR {cr:.1}");
    }

    #[test]
    fn one_dimensional_roundtrip() {
        let data = NdArray::from_fn(Shape::d1(1000), |i| ((i[0] as f32) * 0.02).sin());
        let blob = Sz2::default().compress_typed(&data, ErrorBound::Abs(1e-3));
        let recon = Sz2::default().decompress_typed::<f32>(&blob).unwrap();
        assert!(data.max_abs_diff(&recon) <= 1e-3);
    }

    #[test]
    fn truncated_stream_rejected() {
        let data = NdArray::from_fn(Shape::d2(30, 30), |i| (i[0] * i[1]) as f32);
        let blob = Sz2::default().compress_typed(&data, ErrorBound::Abs(1e-2));
        for cut in [5, blob.len() / 3, blob.len() - 1] {
            assert!(Sz2::default()
                .decompress_typed::<f32>(&blob[..cut])
                .is_err());
        }
    }

    #[test]
    fn custom_block_side_roundtrip() {
        let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 1);
        let sz2 = Sz2 {
            block_side: Some(9),
        };
        let blob = sz2.compress_typed(&data, ErrorBound::Rel(1e-3));
        let recon = sz2.decompress_typed::<f32>(&blob).unwrap();
        let abs = ErrorBound::Rel(1e-3).absolute(&data);
        assert!(data.max_abs_diff(&recon) <= abs);
    }

    #[test]
    fn odd_shapes_roundtrip() {
        for dims in [vec![7usize, 13], vec![5, 5, 5], vec![1, 17], vec![19]] {
            let shape = Shape::new(&dims);
            let data = NdArray::from_fn(shape, |i| (i[0] as f32 + 0.5).ln());
            let blob = Sz2::default().compress_typed(&data, ErrorBound::Abs(1e-3));
            let recon = Sz2::default().decompress_typed::<f32>(&blob).unwrap();
            assert!(data.max_abs_diff(&recon) <= 1e-3, "dims {dims:?}");
        }
    }
}
