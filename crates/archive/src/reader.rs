//! Reading QZAR archives: full variables, region queries, verification.
//!
//! All read methods take `&self`: an [`ArchiveReader`] over a `Sync`
//! [`ByteSource`] is itself shareable, so many threads can serve
//! region queries from **one** open archive handle concurrently — each
//! caller brings its own [`Scratch`] arena via
//! [`ArchiveReader::read_region_with`], or uses the internally-parallel
//! [`ArchiveReader::read_region`].

use crate::format::{
    fnv1a, TemporalKind, Toc, VarMeta, MAGIC, SUPERBLOCK_LEN, VERSION, VERSION_TEMPORAL,
};
use crate::source::{ByteSource, FileSource, SliceSource};
use crate::{ArchiveError, Result};
use qoz_codec::Scratch;
use qoz_tensor::{NdArray, Region, Scalar, Shape};

/// Read-path counters on the process-wide telemetry registry. Resolved
/// once — the per-chunk hot path only touches atomics.
struct ReadMetrics {
    chunk_fetches: std::sync::Arc<qoz_telemetry::Counter>,
    chunks_decoded: std::sync::Arc<qoz_telemetry::Counter>,
    bytes_read: std::sync::Arc<qoz_telemetry::Counter>,
    bytes_served: std::sync::Arc<qoz_telemetry::Counter>,
    faults_truncated: std::sync::Arc<qoz_telemetry::Counter>,
    faults_bit_flip: std::sync::Arc<qoz_telemetry::Counter>,
    tolerant_zero_fills: std::sync::Arc<qoz_telemetry::Counter>,
}

fn read_metrics() -> &'static ReadMetrics {
    static METRICS: std::sync::OnceLock<ReadMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = qoz_telemetry::global();
        ReadMetrics {
            chunk_fetches: reg.counter("qoz_archive_chunk_fetches_total", &[]),
            chunks_decoded: reg.counter("qoz_archive_chunks_decoded_total", &[]),
            bytes_read: reg.counter("qoz_archive_bytes_read_total", &[]),
            bytes_served: reg.counter("qoz_archive_bytes_served_total", &[]),
            faults_truncated: reg.counter("qoz_archive_faults_total", &[("kind", "truncated")]),
            faults_bit_flip: reg.counter("qoz_archive_faults_total", &[("kind", "bit_flip")]),
            tolerant_zero_fills: reg.counter("qoz_archive_tolerant_zero_fills_total", &[]),
        }
    })
}

/// How a stored chunk failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The chunk's bytes could not be fetched — its indexed range runs
    /// past the bytes the source can actually produce (a torn write or
    /// a file truncated underneath an open reader).
    Truncated,
    /// All bytes are present but hash to the wrong checksum (includes
    /// the pathological case of a checksum-colliding blob that then
    /// fails to decode).
    BitFlip,
}

/// One damaged chunk, located precisely enough to route reads around
/// it: a degraded server keeps serving every region that does not touch
/// `(var, chunk)` and zero-fills the slab parts that do (see
/// [`ArchiveReader::read_region_tolerant`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkFault {
    /// Variable the chunk belongs to.
    pub var: String,
    /// Chunk index within the variable's grid.
    pub chunk: usize,
    /// What kind of damage was detected.
    pub kind: FaultKind,
}

/// Full damage report returned by [`ArchiveReader::verify`].
///
/// Verification scans **every** chunk of every variable — it never
/// stops at the first fault — so one pass yields the complete map of
/// what is still servable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Variables checked.
    pub vars: usize,
    /// Chunks whose checksums were verified (clean or not).
    pub chunks: usize,
    /// Payload bytes covered.
    pub payload_bytes: u64,
    /// Every damaged chunk found, in (variable, chunk) scan order.
    pub faults: Vec<ChunkFault>,
}

impl VerifyReport {
    /// `true` when every chunk verified clean.
    pub fn is_clean(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Random-access reader over a QZAR archive.
///
/// Construction parses and checksums the superblock and TOC only; chunk
/// payloads are fetched lazily, one positioned read per chunk a query
/// actually intersects. Every fetched chunk is verified against its
/// index checksum before decoding.
#[derive(Debug)]
pub struct ArchiveReader<S: ByteSource> {
    src: S,
    toc: Toc,
    payload_start: u64,
}

impl ArchiveReader<FileSource> {
    /// Open an archive file.
    pub fn open(path: &str) -> Result<Self> {
        Self::new(FileSource::open(path)?)
    }
}

impl<'a> ArchiveReader<SliceSource<'a>> {
    /// Read an archive already held in memory.
    pub fn from_bytes(bytes: &'a [u8]) -> Result<Self> {
        Self::new(SliceSource::new(bytes))
    }
}

impl<S: ByteSource> ArchiveReader<S> {
    /// Parse the superblock and TOC from any byte source.
    pub fn new(src: S) -> Result<Self> {
        let sb = src.read_at(0, SUPERBLOCK_LEN)?;
        if sb[..4] != MAGIC {
            return Err(ArchiveError::BadMagic);
        }
        let version = sb[4];
        if version > VERSION_TEMPORAL {
            return Err(ArchiveError::NewerFormat {
                found: version,
                supported: VERSION_TEMPORAL,
            });
        }
        // Lower-than-ever-released versions are corruption, not a format
        // to "upgrade" for — don't tell the user to chase a newer build.
        if version < VERSION {
            return Err(ArchiveError::Corrupt("bad container version"));
        }
        if sb[5] != 0 {
            return Err(ArchiveError::Corrupt("nonzero reserved flags"));
        }
        let mut len8 = [0u8; 8];
        len8.copy_from_slice(&sb[6..14]);
        let toc_len = u64::from_le_bytes(len8);
        if toc_len > src.len() {
            return Err(ArchiveError::Truncated);
        }
        let toc_bytes = src.read_at(SUPERBLOCK_LEN as u64, toc_len as usize)?;
        let sum = src.read_at(SUPERBLOCK_LEN as u64 + toc_len, 8)?;
        let mut sum8 = [0u8; 8];
        sum8.copy_from_slice(&sum);
        if fnv1a(&toc_bytes) != u64::from_le_bytes(sum8) {
            return Err(ArchiveError::Corrupt("TOC checksum mismatch"));
        }
        let payload_start = SUPERBLOCK_LEN as u64 + toc_len + 8;
        let payload_len = src.len() - payload_start;
        let toc = Toc::decode(&toc_bytes, payload_len, version)?;
        Ok(ArchiveReader {
            src,
            toc,
            payload_start,
        })
    }

    /// The parsed table of contents.
    pub fn toc(&self) -> &Toc {
        &self.toc
    }

    /// Total archive size in bytes.
    pub fn archive_len(&self) -> u64 {
        self.src.len()
    }

    /// Bytes fetched from the source so far (superblock + TOC + chunks).
    pub fn bytes_read(&self) -> u64 {
        self.src.bytes_read()
    }

    /// Total payload bytes (chunk blobs) stored behind the TOC.
    pub fn payload_len(&self) -> u64 {
        self.src.len() - self.payload_start
    }

    /// Fetch `len` raw payload bytes at payload-relative `offset`
    /// (no checksum verification — the appender streams old payload
    /// through this; chunk-granular reads go through `fetch_chunk`).
    pub(crate) fn read_payload(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.src.read_at(self.payload_start + offset, len)
    }

    /// Fetch chunk `k` of `var` and verify its checksum.
    fn fetch_chunk(&self, var_idx: usize, k: usize) -> Result<Vec<u8>> {
        let m = read_metrics();
        let entry = self.toc.vars[var_idx].chunks[k];
        m.chunk_fetches.inc();
        let blob = self
            .src
            .read_at(self.payload_start + entry.offset, entry.len as usize)?;
        m.bytes_read.add(blob.len() as u64);
        if fnv1a(&blob) != entry.checksum {
            m.faults_bit_flip.inc();
            return Err(ArchiveError::ChecksumMismatch {
                var: self.toc.vars[var_idx].name.clone(),
                chunk: k,
            });
        }
        Ok(blob)
    }

    /// Fetch chunk `k` of `var`, mapping any failure to the
    /// [`FaultKind`] a damage report records: an unreadable byte range
    /// is truncation, a readable range with the wrong hash a bit-flip.
    fn classify_chunk(&self, var_idx: usize, k: usize) -> std::result::Result<Vec<u8>, FaultKind> {
        let m = read_metrics();
        let entry = self.toc.vars[var_idx].chunks[k];
        m.chunk_fetches.inc();
        let blob = self
            .src
            .read_at(self.payload_start + entry.offset, entry.len as usize)
            .map_err(|_| {
                m.faults_truncated.inc();
                FaultKind::Truncated
            })?;
        m.bytes_read.add(blob.len() as u64);
        if fnv1a(&blob) != entry.checksum {
            m.faults_bit_flip.inc();
            return Err(FaultKind::BitFlip);
        }
        Ok(blob)
    }

    fn var_index<T: Scalar>(&self, name: &str) -> Result<usize> {
        let idx = self
            .toc
            .vars
            .iter()
            .position(|v| v.name == name)
            .ok_or_else(|| ArchiveError::UnknownVariable(name.to_string()))?;
        let stored = self.toc.vars[idx].scalar_tag;
        if stored != T::TYPE_TAG {
            return Err(ArchiveError::TypeMismatch {
                stored,
                requested: T::TYPE_TAG,
            });
        }
        Ok(idx)
    }

    /// Resolve the temporal chain that reconstructs `name`: variable
    /// indices from the chain base (a keyframe or independent variable)
    /// through `name` itself. Ordinary variables resolve to a
    /// single-element chain, so the non-temporal read path is unchanged.
    fn chain_indices<T: Scalar>(&self, name: &str) -> Result<Vec<usize>> {
        let mut chain = vec![self.var_index::<T>(name)?];
        loop {
            let v = &self.toc.vars[*chain.last().expect("non-empty")];
            match &v.temporal {
                TemporalKind::Delta { prev } => {
                    // The TOC decoder already enforces earlier-only
                    // predecessor references; the length guard keeps a
                    // hand-built TOC from looping us regardless.
                    if chain.len() > self.toc.vars.len() {
                        return Err(ArchiveError::Corrupt("temporal chain cycle"));
                    }
                    chain.push(self.var_index::<T>(prev)?);
                }
                _ => break,
            }
        }
        chain.reverse();
        Ok(chain)
    }

    /// Decompress the slab of `var` covered by `region`, touching only
    /// the chunks the region intersects.
    ///
    /// Intersecting chunk blobs are fetched and checksum-verified one
    /// positioned read at a time, then decompressed in parallel through
    /// `qoz_pario`'s disjoint-slab workers — chunks are independent
    /// streams, so region queries and bulk loads scale with cores the
    /// same way bulk dumps do. The result is a dense array of the
    /// region's size, bitwise equal to slicing the same region out of a
    /// full decompress.
    ///
    /// Temporal delta snapshots are resolved transparently: the same
    /// region is read from every chain member (base keyframe first) and
    /// the residuals accumulated — addition commutes with region
    /// extraction, so a chained region read still touches only the
    /// chunks each member's region intersects, never whole snapshots.
    pub fn read_region<T: Scalar>(&self, name: &str, region: &Region) -> Result<NdArray<T>> {
        let chain = self.chain_indices::<T>(name)?;
        let mut acc = self.read_region_member::<T>(chain[0], region)?;
        for &idx in &chain[1..] {
            let residual = self.read_region_member::<T>(idx, region)?;
            qoz_temporal::accumulate_residual(&mut acc, &residual)?;
        }
        Ok(acc)
    }

    /// One chain member's (raw) region slab — for delta members this is
    /// the residual field, not a reconstruction.
    fn read_region_member<T: Scalar>(&self, var_idx: usize, region: &Region) -> Result<NdArray<T>> {
        let (grid, hits) = self.plan_region(var_idx, region)?;
        let mut blobs = Vec::with_capacity(hits.len());
        for &(k, _) in &hits {
            blobs.push(self.fetch_chunk(var_idx, k)?);
        }
        let codec = qoz_api::BackendRegistry::new().codec::<T>(self.toc.vars[var_idx].compressor);
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let chunks = qoz_pario::decompress_chunks(&*codec, &blobs, threads)?;
        let m = read_metrics();
        m.chunks_decoded.add(chunks.len() as u64);
        let slab = stitch(region, &grid, &hits, &chunks)?;
        m.bytes_served.add((slab.len() * T::BYTES) as u64);
        Ok(slab)
    }

    /// [`ArchiveReader::read_region`] decoding serially with the
    /// caller's scratch arena instead of spawning workers.
    ///
    /// This is the many-concurrent-readers shape: when the parallelism
    /// lives *outside* — N threads each querying their own region of one
    /// shared reader — per-query worker pools only oversubscribe the
    /// machine. Each thread keeps one arena and calls this; chunk
    /// streams decode one at a time through it, values bitwise equal to
    /// [`ArchiveReader::read_region`]. Temporal chains resolve exactly
    /// as in [`ArchiveReader::read_region`].
    pub fn read_region_with<T: Scalar>(
        &self,
        name: &str,
        region: &Region,
        scratch: &mut Scratch<T>,
    ) -> Result<NdArray<T>> {
        let chain = self.chain_indices::<T>(name)?;
        let mut acc = self.read_region_member_with::<T>(chain[0], region, scratch)?;
        for &idx in &chain[1..] {
            let residual = self.read_region_member_with::<T>(idx, region, scratch)?;
            qoz_temporal::accumulate_residual(&mut acc, &residual)?;
        }
        Ok(acc)
    }

    fn read_region_member_with<T: Scalar>(
        &self,
        var_idx: usize,
        region: &Region,
        scratch: &mut Scratch<T>,
    ) -> Result<NdArray<T>> {
        let (grid, hits) = self.plan_region(var_idx, region)?;
        let codec = qoz_api::BackendRegistry::new().codec::<T>(self.toc.vars[var_idx].compressor);
        let mut chunks = Vec::with_capacity(hits.len());
        for &(k, _) in &hits {
            let blob = self.fetch_chunk(var_idx, k)?;
            chunks.push(codec.decompress_with_scratch(&blob, scratch)?);
        }
        let m = read_metrics();
        m.chunks_decoded.add(chunks.len() as u64);
        let slab = stitch(region, &grid, &hits, &chunks)?;
        m.bytes_served.add((slab.len() * T::BYTES) as u64);
        Ok(slab)
    }

    /// Bounds-check a query and map it onto the chunk grid: the grid,
    /// and the `(chunk, overlap)` pairs the region intersects.
    #[allow(clippy::type_complexity)]
    fn plan_region(
        &self,
        var_idx: usize,
        region: &Region,
    ) -> Result<(Vec<Region>, Vec<(usize, Region)>)> {
        let shape = self.toc.vars[var_idx].shape;
        // Checked addition: a wrapped `origin + size` must not slip past
        // the bounds check and quietly return a zero-filled slab.
        if region.ndim() != shape.ndim()
            || (0..region.ndim()).any(|d| {
                region.origin()[d]
                    .checked_add(region.size()[d])
                    .map_or(true, |end| end > shape.dim(d))
            })
        {
            return Err(ArchiveError::RegionOutOfBounds);
        }
        let grid = self.toc.vars[var_idx].chunk_regions();
        let hits: Vec<(usize, Region)> = grid
            .iter()
            .enumerate()
            .filter_map(|(k, cr)| cr.intersect(region).map(|overlap| (k, overlap)))
            .collect();
        Ok((grid, hits))
    }

    /// Decompress a whole variable (a [`ArchiveReader::read_region`]
    /// over the full shape — every chunk is fully covered, so each
    /// decodes in parallel and lands in the output without copies).
    pub fn read_full<T: Scalar>(&self, name: &str) -> Result<NdArray<T>> {
        let var_idx = self.var_index::<T>(name)?;
        let shape = self.toc.vars[var_idx].shape;
        self.read_region(name, &Region::full(shape))
    }

    /// Integrity fast path: fetch every chunk and check its checksum
    /// (and the TOC's, already checked at open) **without** spending any
    /// time decompressing.
    ///
    /// Damage never aborts the scan — every chunk of every variable is
    /// checked and every fault lands in [`VerifyReport::faults`], so a
    /// single pass tells a server exactly which chunks it must route
    /// around (and whether the damage is a torn tail or scattered
    /// bit-flips). A report with [`VerifyReport::is_clean`] `== false`
    /// is still `Ok`: failing to *verify* is not failing to *scan*.
    pub fn verify(&self) -> Result<VerifyReport> {
        let mut report = VerifyReport {
            vars: self.toc.vars.len(),
            chunks: 0,
            payload_bytes: 0,
            faults: Vec::new(),
        };
        for v in 0..self.toc.vars.len() {
            for k in 0..self.toc.vars[v].chunks.len() {
                report.chunks += 1;
                report.payload_bytes += self.toc.vars[v].chunks[k].len;
                if let Err(kind) = self.classify_chunk(v, k) {
                    report.faults.push(ChunkFault {
                        var: self.toc.vars[v].name.clone(),
                        chunk: k,
                        kind,
                    });
                }
            }
        }
        Ok(report)
    }

    /// [`ArchiveReader::read_region_with`] that serves *around* damaged
    /// chunks instead of failing the whole query.
    ///
    /// Chunks that fetch and decode cleanly land in the slab exactly as
    /// in the strict path (bitwise equal where clean); chunks that are
    /// truncated, checksum-broken, or undecodable leave their part of
    /// the slab **zero-filled** and are reported in the returned fault
    /// list. An empty fault list therefore certifies a byte-identical
    /// result to [`ArchiveReader::read_region_with`]; a non-empty one is
    /// the daemon's "degraded read" answer. Structural errors that make
    /// the query itself meaningless (unknown variable, type mismatch,
    /// out-of-bounds region) still fail hard.
    /// Temporal chains degrade per member: a damaged chunk in any chain
    /// member zero-fills that member's contribution to the slab (for a
    /// delta member that reads as "no change there") and is reported in
    /// the fault list like any other damage.
    pub fn read_region_tolerant<T: Scalar>(
        &self,
        name: &str,
        region: &Region,
        scratch: &mut Scratch<T>,
    ) -> Result<(NdArray<T>, Vec<ChunkFault>)> {
        let chain = self.chain_indices::<T>(name)?;
        let (mut acc, mut all_faults) =
            self.read_region_member_tolerant::<T>(chain[0], region, scratch)?;
        for &idx in &chain[1..] {
            let (residual, faults) = self.read_region_member_tolerant::<T>(idx, region, scratch)?;
            all_faults.extend(faults);
            qoz_temporal::accumulate_residual(&mut acc, &residual)?;
        }
        Ok((acc, all_faults))
    }

    fn read_region_member_tolerant<T: Scalar>(
        &self,
        var_idx: usize,
        region: &Region,
        scratch: &mut Scratch<T>,
    ) -> Result<(NdArray<T>, Vec<ChunkFault>)> {
        let (grid, hits) = self.plan_region(var_idx, region)?;
        let codec = qoz_api::BackendRegistry::new().codec::<T>(self.toc.vars[var_idx].compressor);
        let mut clean_hits = Vec::with_capacity(hits.len());
        let mut chunks = Vec::with_capacity(hits.len());
        let mut faults = Vec::new();
        for (k, overlap) in hits {
            let kind = match self.classify_chunk(var_idx, k) {
                Ok(blob) => match codec.decompress_with_scratch(&blob, scratch) {
                    Ok(decoded) if decoded.shape().dims() == grid[k].size() => {
                        clean_hits.push((k, overlap));
                        chunks.push(decoded);
                        continue;
                    }
                    // Checksum passed but the stream won't decode (or
                    // decodes to the wrong shape): payload damage, not
                    // a missing tail.
                    _ => FaultKind::BitFlip,
                },
                Err(kind) => kind,
            };
            faults.push(ChunkFault {
                var: self.toc.vars[var_idx].name.clone(),
                chunk: k,
                kind,
            });
        }
        let m = read_metrics();
        m.chunks_decoded.add(chunks.len() as u64);
        m.tolerant_zero_fills.add(faults.len() as u64);
        let slab = stitch(region, &grid, &clean_hits, &chunks)?;
        m.bytes_served.add((slab.len() * T::BYTES) as u64);
        Ok((slab, faults))
    }
}

/// Stitch decoded chunks into a dense array of the region's size.
fn stitch<T: Scalar>(
    region: &Region,
    grid: &[Region],
    hits: &[(usize, Region)],
    chunks: &[NdArray<T>],
) -> Result<NdArray<T>> {
    let nd = region.ndim();
    let mut out = NdArray::<T>::zeros(Shape::new(region.size()));
    for (&(k, ref overlap), chunk) in hits.iter().zip(chunks) {
        let chunk_region = &grid[k];
        if chunk.shape().dims() != chunk_region.size() {
            return Err(ArchiveError::Corrupt("chunk stream disagrees with index"));
        }
        // Overlap in chunk-local, then region-local coordinates.
        let mut local_o = [0usize; qoz_tensor::MAX_NDIM];
        let mut dest_o = [0usize; qoz_tensor::MAX_NDIM];
        for d in 0..nd {
            local_o[d] = overlap.origin()[d] - chunk_region.origin()[d];
            dest_o[d] = overlap.origin()[d] - region.origin()[d];
        }
        let dest = Region::new(&dest_o[..nd], overlap.size());
        if overlap.size() == chunk_region.size() {
            // Fully-covered chunk (the read_full case): insert
            // directly, no intermediate copy.
            out.insert_region(&dest, chunk);
        } else {
            let piece = chunk.extract_region(&Region::new(&local_o[..nd], overlap.size()));
            out.insert_region(&dest, &piece);
        }
    }
    Ok(out)
}

/// Convenience: list `(name, meta)` summaries of an archive's variables.
pub fn describe(toc: &Toc) -> Vec<String> {
    toc.vars
        .iter()
        .map(|v: &VarMeta| {
            let ty = if v.scalar_tag == f64::TYPE_TAG {
                "f64".to_string()
            } else if v.scalar_tag == f32::TYPE_TAG {
                "f32".to_string()
            } else {
                format!("tag {:#04x}", v.scalar_tag)
            };
            let chain = match &v.temporal {
                TemporalKind::Independent => String::new(),
                TemporalKind::Keyframe => ", keyframe".to_string(),
                TemporalKind::Delta { prev } => format!(", delta of {prev}"),
            };
            format!(
                "{}: {:?} {ty} via {}, eb={:.3e}, {} chunks (side {}), {} bytes{chain}",
                v.name,
                v.shape.dims(),
                v.compressor.name(),
                v.abs_eb,
                v.chunks.len(),
                v.chunk_side,
                v.compressed_len()
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::ArchiveWriter;
    use qoz_codec::stream::ErrorBound;

    fn field() -> NdArray<f32> {
        NdArray::from_fn(Shape::d3(13, 11, 9), |i| {
            (i[0] as f32 * 0.35).sin() + (i[1] as f32 * 0.2).cos() * i[2] as f32 * 0.05
        })
    }

    fn archive() -> Vec<u8> {
        let data = field();
        let mut w = ArchiveWriter::new().with_chunk_side(4);
        w.add_variable(
            "rho",
            &data,
            &qoz_sz3::Sz3::default(),
            ErrorBound::Abs(1e-3),
        )
        .unwrap();
        w.finish()
    }

    #[test]
    fn full_read_honors_bound() {
        let bytes = archive();
        let r = ArchiveReader::from_bytes(&bytes).unwrap();
        let full: NdArray<f32> = r.read_full("rho").unwrap();
        assert!(field().max_abs_diff(&full) <= 1e-3 * (1.0 + 1e-9));
    }

    #[test]
    fn region_read_equals_full_slice() {
        let bytes = archive();
        let r = ArchiveReader::from_bytes(&bytes).unwrap();
        let full: NdArray<f32> = r.read_full("rho").unwrap();
        for region in [
            Region::new(&[0, 0, 0], &[1, 1, 1]),
            Region::new(&[3, 2, 1], &[6, 5, 7]),
            Region::new(&[12, 10, 8], &[1, 1, 1]),
            Region::new(&[0, 0, 0], &[13, 11, 9]),
        ] {
            let slab: NdArray<f32> = r.read_region("rho", &region).unwrap();
            assert_eq!(
                slab.as_slice(),
                full.extract_region(&region).as_slice(),
                "region {region:?} differs from full-decompress slice"
            );
        }
    }

    #[test]
    fn region_read_touches_fewer_bytes() {
        let bytes = archive();
        let r = ArchiveReader::from_bytes(&bytes).unwrap();
        let header_cost = r.bytes_read();
        let _: NdArray<f32> = r
            .read_region("rho", &Region::new(&[0, 0, 0], &[2, 2, 2]))
            .unwrap();
        let after_region = r.bytes_read();
        // One 4x4x4 corner chunk out of 4*3*3 chunks.
        assert!(
            after_region - header_cost < bytes.len() as u64 / 8,
            "single-chunk query read {} of {} bytes",
            after_region - header_cost,
            bytes.len()
        );
    }

    #[test]
    fn wrong_name_type_and_region_reported() {
        let bytes = archive();
        let r = ArchiveReader::from_bytes(&bytes).unwrap();
        assert!(matches!(
            r.read_full::<f32>("nope"),
            Err(ArchiveError::UnknownVariable(_))
        ));
        assert!(matches!(
            r.read_full::<f64>("rho"),
            Err(ArchiveError::TypeMismatch { .. })
        ));
        assert!(matches!(
            r.read_region::<f32>("rho", &Region::new(&[10, 0, 0], &[4, 1, 1])),
            Err(ArchiveError::RegionOutOfBounds)
        ));
        assert!(matches!(
            r.read_region::<f32>("rho", &Region::new(&[0, 0], &[2, 2])),
            Err(ArchiveError::RegionOutOfBounds)
        ));
        // origin + size wrapping around usize must not sneak past the
        // bounds check and come back as a zero-filled slab.
        assert!(matches!(
            r.read_region::<f32>("rho", &Region::new(&[usize::MAX, 0, 0], &[2, 1, 1])),
            Err(ArchiveError::RegionOutOfBounds)
        ));
    }

    #[test]
    fn verify_checks_every_chunk() {
        let bytes = archive();
        let r = ArchiveReader::from_bytes(&bytes).unwrap();
        let report = r.verify().unwrap();
        assert_eq!(report.vars, 1);
        assert_eq!(report.chunks, 4 * 3 * 3);
        assert!(report.payload_bytes > 0);
        assert!(report.is_clean());
        assert_eq!(report.faults, vec![]);
    }

    #[test]
    fn payload_corruption_detected() {
        let mut bytes = archive();
        let n = bytes.len();
        bytes[n - 10] ^= 0xFF; // inside the last chunk's blob
        let r = ArchiveReader::from_bytes(&bytes).unwrap();
        let report = r.verify().unwrap();
        assert!(!report.is_clean());
        // The scan still covered the whole archive and located the
        // damage precisely: last chunk, wrong hash, bytes all present.
        assert_eq!(report.chunks, 4 * 3 * 3);
        assert_eq!(
            report.faults,
            vec![ChunkFault {
                var: "rho".into(),
                chunk: 4 * 3 * 3 - 1,
                kind: FaultKind::BitFlip,
            }]
        );
        // The strict read path still refuses the damaged chunk.
        assert!(matches!(
            r.read_full::<f32>("rho"),
            Err(ArchiveError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn multi_fault_scan_does_not_stop_early() {
        let data = field();
        let mut w = ArchiveWriter::new().with_chunk_side(4);
        w.add_variable("a", &data, &qoz_sz3::Sz3::default(), ErrorBound::Abs(1e-3))
            .unwrap();
        w.add_variable("b", &data, &qoz_sz3::Sz3::default(), ErrorBound::Abs(1e-3))
            .unwrap();
        let mut bytes = w.finish();
        // Flip one byte inside each variable's first chunk.
        let (toc, payload_start) = {
            let r = ArchiveReader::from_bytes(&bytes).unwrap();
            (r.toc().clone(), bytes.len() as u64 - r.payload_len())
        };
        for var in &toc.vars {
            let off = payload_start + var.chunks[0].offset;
            bytes[off as usize] ^= 0xFF;
        }
        let r = ArchiveReader::from_bytes(&bytes).unwrap();
        let report = r.verify().unwrap();
        assert_eq!(report.chunks, 2 * 4 * 3 * 3, "scan covers both vars");
        assert_eq!(report.faults.len(), 2, "one fault per damaged var");
        assert_eq!(report.faults[0].var, "a");
        assert_eq!(report.faults[1].var, "b");
        assert!(report
            .faults
            .iter()
            .all(|f| f.chunk == 0 && f.kind == FaultKind::BitFlip));
    }

    #[test]
    fn shrunk_file_reports_truncation_not_bitflip() {
        let bytes = archive();
        let path = std::env::temp_dir()
            .join(format!("qoz_archive_shrunk_{}.qza", std::process::id()))
            .to_string_lossy()
            .into_owned();
        std::fs::write(&path, &bytes).unwrap();
        let r = ArchiveReader::open(&path).unwrap();
        // The file is torn underneath the open reader — the tail chunk's
        // byte range no longer exists.
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(bytes.len() as u64 - 10).unwrap();
        drop(f);
        let report = r.verify().unwrap();
        assert!(!report.is_clean());
        assert!(
            report.faults.iter().all(|f| f.kind == FaultKind::Truncated),
            "{:?}",
            report.faults
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tolerant_read_zero_fills_damage_and_reports_it() {
        let mut bytes = archive();
        let n = bytes.len();
        bytes[n - 10] ^= 0xFF; // damage the last chunk
        let r = ArchiveReader::from_bytes(&bytes).unwrap();
        let bad_chunk = 4 * 3 * 3 - 1;
        let full_region = Region::new(&[0, 0, 0], &[13, 11, 9]);
        let mut scratch = Scratch::new();
        let (slab, faults): (NdArray<f32>, _) = r
            .read_region_tolerant("rho", &full_region, &mut scratch)
            .unwrap();
        assert_eq!(
            faults,
            vec![ChunkFault {
                var: "rho".into(),
                chunk: bad_chunk,
                kind: FaultKind::BitFlip,
            }]
        );
        // Clean part matches the pristine archive; damaged chunk's cells
        // are zero-filled. The last chunk covers the [12.., 8.., 8..]
        // corner of the 4-side grid.
        let pristine = archive();
        let pr = ArchiveReader::from_bytes(&pristine).unwrap();
        let want: NdArray<f32> = pr.read_full("rho").unwrap();
        for x in 0..13 {
            for y in 0..11 {
                for z in 0..9 {
                    let i = (x * 11 + y) * 9 + z;
                    let in_bad = x >= 12 && y >= 8 && z >= 8;
                    if in_bad {
                        assert_eq!(slab.as_slice()[i], 0.0, "damaged cell ({x},{y},{z})");
                    } else {
                        assert_eq!(
                            slab.as_slice()[i],
                            want.as_slice()[i],
                            "clean cell ({x},{y},{z})"
                        );
                    }
                }
            }
        }

        // A region that avoids the damaged chunk reads clean with no
        // faults — byte-identical to the strict path.
        let safe = Region::new(&[0, 0, 0], &[8, 8, 8]);
        let (clean, faults): (NdArray<f32>, _) =
            r.read_region_tolerant("rho", &safe, &mut scratch).unwrap();
        assert!(faults.is_empty());
        assert_eq!(
            clean.as_slice(),
            r.read_region::<f32>("rho", &safe).unwrap().as_slice()
        );

        // Structural errors still fail hard.
        assert!(r
            .read_region_tolerant::<f32>("nope", &safe, &mut scratch)
            .is_err());
    }

    #[test]
    fn newer_container_version_reported() {
        let mut bytes = archive();
        bytes[4] = VERSION_TEMPORAL + 1;
        let err = ArchiveReader::from_bytes(&bytes).unwrap_err();
        assert!(err.is_newer_format(), "{err}");
        // A version below anything ever released is corruption — the
        // error must not advise upgrading.
        bytes[4] = 0;
        let err = ArchiveReader::from_bytes(&bytes).unwrap_err();
        assert!(!err.is_newer_format());
        assert!(matches!(err, ArchiveError::Corrupt(_)), "{err}");
    }

    #[test]
    fn bad_magic_reported() {
        let mut bytes = archive();
        bytes[0] = b'X';
        assert_eq!(
            ArchiveReader::from_bytes(&bytes).unwrap_err(),
            ArchiveError::BadMagic
        );
    }

    #[test]
    fn describe_summarizes_vars() {
        let bytes = archive();
        let r = ArchiveReader::from_bytes(&bytes).unwrap();
        let lines = describe(r.toc());
        assert_eq!(lines.len(), 1);
        assert!(
            lines[0].contains("rho") && lines[0].contains("SZ3"),
            "{lines:?}"
        );
    }
}
