//! Backend dispatch for self-describing `qoz_codec::stream` blobs.
//!
//! Archive chunks are ordinary workspace streams; their headers name the
//! producing compressor, so decoding only needs the blob itself. This is
//! the one place that maps a [`CompressorId`] back to a concrete backend
//! (the CLI reuses it for `qoz decompress`).

use crate::Result;
use qoz_codec::stream::{Compressor, CompressorId};
use qoz_codec::{ByteReader, Header};
use qoz_tensor::{NdArray, Scalar};

/// Parse just the stream header of a blob.
pub fn peek_header(blob: &[u8]) -> Result<Header> {
    let mut r = ByteReader::new(blob);
    Ok(qoz_codec::stream::read_header(&mut r)?)
}

/// A default-configured backend for a [`CompressorId`] (configuration
/// only affects compression; decompression is driven by the stream).
pub fn compressor_for<T: Scalar>(id: CompressorId) -> Box<dyn Compressor<T> + Sync> {
    match id {
        CompressorId::Qoz => Box::new(qoz_core::Qoz::default()),
        CompressorId::Sz3 => Box::new(qoz_sz3::Sz3::default()),
        CompressorId::Sz2 => Box::new(qoz_sz2::Sz2::default()),
        CompressorId::Zfp => Box::new(qoz_zfp::Zfp),
        CompressorId::Mgard => Box::new(qoz_mgard::Mgard),
    }
}

/// Decompress any workspace stream, dispatching on the header's
/// compressor id.
pub fn decompress_stream<T: Scalar>(blob: &[u8]) -> Result<NdArray<T>> {
    let header = peek_header(blob)?;
    Ok(compressor_for::<T>(header.compressor).decompress(blob)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_codec::stream::{Compressor, ErrorBound};
    use qoz_tensor::Shape;

    #[test]
    fn dispatch_decodes_every_backend() {
        let data = NdArray::from_fn(Shape::d2(16, 16), |i| {
            (i[0] as f32 * 0.3).sin() + i[1] as f32 * 0.05
        });
        let bound = ErrorBound::Abs(1e-3);
        let blobs: Vec<Vec<u8>> = vec![
            qoz_core::Qoz::default().compress(&data, bound),
            qoz_sz3::Sz3::default().compress(&data, bound),
            qoz_sz2::Sz2::default().compress(&data, bound),
            qoz_zfp::Zfp.compress(&data, bound),
            qoz_mgard::Mgard.compress(&data, bound),
        ];
        for blob in blobs {
            let recon: NdArray<f32> = decompress_stream(&blob).unwrap();
            assert_eq!(recon.shape(), data.shape());
            assert!(data.max_abs_diff(&recon) <= 1e-3 * (1.0 + 1e-9));
        }
    }

    #[test]
    fn dispatch_rejects_garbage() {
        assert!(decompress_stream::<f32>(b"junk").is_err());
        assert!(decompress_stream::<f32>(&[]).is_err());
    }
}
