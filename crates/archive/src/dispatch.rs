//! Deprecated shims: backend dispatch moved to [`qoz_api`].
//!
//! This module used to own the workspace's `CompressorId -> backend`
//! mapping. That mapping now lives in [`qoz_api::BackendRegistry`] —
//! the single registry every consumer (archive, CLI, bench) dispatches
//! through. These thin delegating wrappers keep old call sites
//! compiling for one release and will be removed afterwards.

use crate::Result;
use qoz_api::{BackendRegistry, Codec};
use qoz_codec::stream::CompressorId;
use qoz_codec::Header;
use qoz_tensor::{NdArray, Scalar};

/// Parse just the stream header of a blob.
#[deprecated(since = "0.2.0", note = "use `qoz_api::peek_header` instead")]
pub fn peek_header(blob: &[u8]) -> Result<Header> {
    Ok(qoz_api::peek_header(blob)?)
}

/// A default-configured backend for a [`CompressorId`].
///
/// Note the return type is now the facade's `Box<dyn Codec<T>>` rather
/// than the old `Box<dyn Compressor<T> + Sync>`. `dyn Codec<T>`
/// implements `Compressor<T> + Sync`, so every *use* of the result
/// (method calls, passing to `qoz_pario`/`ArchiveWriter` generics)
/// keeps compiling — only exact old type annotations need updating.
#[deprecated(
    since = "0.2.0",
    note = "use `qoz_api::BackendRegistry::codec` instead"
)]
pub fn compressor_for<T: Scalar>(id: CompressorId) -> Box<dyn Codec<T>> {
    BackendRegistry::new().codec::<T>(id)
}

/// Decompress any workspace stream, dispatching on the header's
/// compressor id.
#[deprecated(
    since = "0.2.0",
    note = "use `qoz_api::decompress_stream` (or `BackendRegistry::decompress`) instead"
)]
pub fn decompress_stream<T: Scalar>(blob: &[u8]) -> Result<NdArray<T>> {
    Ok(qoz_api::decompress_stream(blob)?)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use qoz_codec::stream::ErrorBound;
    use qoz_tensor::Shape;

    #[test]
    fn shims_still_delegate() {
        let data = NdArray::from_fn(Shape::d2(16, 16), |i| {
            (i[0] as f32 * 0.3).sin() + i[1] as f32 * 0.05
        });
        let blob = compressor_for::<f32>(CompressorId::Sz3).compress(&data, ErrorBound::Abs(1e-3));
        assert_eq!(peek_header(&blob).unwrap().compressor, CompressorId::Sz3);
        let recon: NdArray<f32> = decompress_stream(&blob).unwrap();
        assert!(data.max_abs_diff(&recon) <= 1e-3 * (1.0 + 1e-9));
        assert!(decompress_stream::<f32>(b"junk").is_err());
    }
}
