//! On-disk layout of the QZAR container.
//!
//! ```text
//! offset 0   magic "QZAR"                      (4 bytes)
//!        4   container version                 (u8)
//!        5   flags, reserved, must be 0        (u8)
//!        6   toc_len                           (u64 LE)
//!       14   TOC                               (toc_len bytes, see below)
//!  14+toc_len  fnv1a64(TOC bytes)              (u64 LE)
//!  22+toc_len  payload: chunk blobs, back to back
//! ```
//!
//! TOC serialization (via `ByteWriter`, LEB128 varints):
//!
//! ```text
//! var_count varint
//! per variable:
//!   name          len-prefixed UTF-8
//!   scalar_tag    u8  (Scalar::TYPE_TAG)
//!   ndim          u8, then ndim dims as varints
//!   abs_eb        f64 (absolute bound all chunks were compressed with)
//!   compressor    u8  (CompressorId)
//!   chunk_side    varint (Region::tile block size)
//!   chunk_count   varint (must equal the tile-grid size)
//!   per chunk (row-major grid order, matching Region::tile):
//!     offset varint   relative to payload start
//!     len    varint
//!     fnv1a64(blob)   u64
//! ```
//!
//! Invariants the reader enforces:
//!
//! * chunks are byte-independent `qoz_codec::stream` blobs — each one
//!   decodes on its own, with its own header, so any subset of chunks
//!   can be fetched and decompressed without touching the rest;
//! * the TOC is covered by its own FNV-1a checksum, every chunk by the
//!   checksum recorded in its index entry;
//! * chunk `offset + len` never exceeds the payload extent, and chunk
//!   count always equals the `Region::tile` grid size for the recorded
//!   shape and `chunk_side`.

use crate::{ArchiveError, Result};
use qoz_codec::stream::CompressorId;
use qoz_codec::{ByteReader, ByteWriter};
use qoz_tensor::{Region, Shape};

/// 4-byte container magic: "QZAR" (QoZ archive).
pub const MAGIC: [u8; 4] = *b"QZAR";
/// Container version that adds per-variable temporal-chain records:
/// each var record carries a [`TemporalKind`] tag (and, for deltas, the
/// predecessor's name) right after the compressor byte. Archives whose
/// variables are all [`TemporalKind::Independent`] keep emitting
/// [`VERSION`], byte-identical to pre-temporal builds.
pub const VERSION_TEMPORAL: u8 = 2;
/// Sanity cap on a single variable's declared element count (2^36 ~
/// 275 GB of f32). The TOC is plaintext with a non-cryptographic
/// checksum, so declared sizes gate allocations: anything larger is
/// treated as corruption rather than trusted.
pub const MAX_VAR_ELEMS: u64 = 1 << 36;
/// Current container format version.
pub const VERSION: u8 = 1;
/// Bytes before the TOC: magic + version + flags + toc_len.
pub const SUPERBLOCK_LEN: usize = 4 + 1 + 1 + 8;

/// FNV-1a, 64-bit. Dependency-free, stable across platforms; used for
/// both the TOC and the per-chunk integrity checksums.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Index entry for one stored chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Byte offset of the blob, relative to the payload start.
    pub offset: u64,
    /// Blob length in bytes.
    pub len: u64,
    /// FNV-1a 64 of the blob bytes.
    pub checksum: u64,
}

/// A variable's role in a temporal snapshot chain.
///
/// Delta variables store the **residual field** against the prior
/// snapshot's reconstruction, chunked and compressed exactly like any
/// other variable (each chunk is still an independent plain stream).
/// The chain structure lives here, in the TOC, so
/// `ArchiveReader::read_region` can resolve `x̂_t[R] = x̂_{t-1}[R] +
/// r̂_t[R]` — residual addition commutes with region extraction, so
/// chained region reads touch only the chunks each member's region
/// intersects.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TemporalKind {
    /// An ordinary variable, no chain membership.
    #[default]
    Independent,
    /// A chain anchor: stored independently, deltas may reference it.
    Keyframe,
    /// Residual against `prev`'s reconstruction (`prev` is the full
    /// variable name of the chain predecessor, which must appear
    /// *earlier* in the TOC — chains are acyclic by construction).
    Delta {
        /// Name of the predecessor variable.
        prev: String,
    },
}

impl TemporalKind {
    /// Serialized tag byte.
    fn tag(&self) -> u8 {
        match self {
            TemporalKind::Independent => 0,
            TemporalKind::Keyframe => 1,
            TemporalKind::Delta { .. } => 2,
        }
    }

    /// `true` for delta members — reads must resolve the chain.
    pub fn is_delta(&self) -> bool {
        matches!(self, TemporalKind::Delta { .. })
    }
}

/// Metadata for one archived variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VarMeta {
    /// Variable name (unique within the archive).
    pub name: String,
    /// Element type tag (`Scalar::TYPE_TAG`).
    pub scalar_tag: u8,
    /// Full-variable shape.
    pub shape: Shape,
    /// Absolute error bound every chunk was compressed with.
    pub abs_eb: f64,
    /// Backend that produced the chunk streams.
    pub compressor: CompressorId,
    /// `Region::tile` block size of the chunk grid.
    pub chunk_side: usize,
    /// One entry per chunk, in `Region::tile` (row-major grid) order.
    pub chunks: Vec<ChunkEntry>,
    /// Temporal-chain role ([`TemporalKind::Independent`] for ordinary
    /// variables; anything else upgrades the container to
    /// [`VERSION_TEMPORAL`]).
    pub temporal: TemporalKind,
}

impl VarMeta {
    /// The chunk grid regions, in the same order as [`VarMeta::chunks`].
    pub fn chunk_regions(&self) -> Vec<Region> {
        Region::tile(self.shape, self.chunk_side)
    }

    /// Total compressed payload bytes of this variable.
    pub fn compressed_len(&self) -> u64 {
        self.chunks.iter().map(|c| c.len).sum()
    }
}

/// Compose the variable name of `base` at timestep `t` in the
/// multi-snapshot layout (`"{base}@t{t}"`).
///
/// A time series is stored as one ordinary variable per timestep, all
/// sharing the archive's single TOC — no separate snapshot table, so
/// every existing reader, region query and integrity check works on
/// snapshot variables unchanged. [`Toc::snapshots`] lists them back.
pub fn snapshot_name(base: &str, t: u64) -> String {
    format!("{base}@t{t}")
}

/// Split a multi-snapshot variable name into `(base, timestep)`;
/// `None` for names that are not of the `"{base}@t{t}"` form.
pub fn parse_snapshot_name(name: &str) -> Option<(&str, u64)> {
    let (base, t) = name.rsplit_once("@t")?;
    if base.is_empty() || t.is_empty() || !t.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some((base, t.parse().ok()?))
}

/// Parsed table of contents.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Toc {
    /// Archived variables, in insertion order.
    pub vars: Vec<VarMeta>,
}

impl Toc {
    /// Find a variable by name.
    pub fn var(&self, name: &str) -> Result<&VarMeta> {
        self.vars
            .iter()
            .find(|v| v.name == name)
            .ok_or_else(|| ArchiveError::UnknownVariable(name.to_string()))
    }

    /// The timesteps stored for `base` under the multi-snapshot naming
    /// convention, sorted ascending by timestep.
    pub fn snapshots(&self, base: &str) -> Vec<(u64, &VarMeta)> {
        let mut out: Vec<(u64, &VarMeta)> = self
            .vars
            .iter()
            .filter_map(|v| match parse_snapshot_name(&v.name) {
                Some((b, t)) if b == base => Some((t, v)),
                _ => None,
            })
            .collect();
        out.sort_by_key(|&(t, _)| t);
        out
    }

    /// The container version this TOC requires: [`VERSION`] while every
    /// variable is [`TemporalKind::Independent`] (the serialization is
    /// then byte-identical to pre-temporal builds), [`VERSION_TEMPORAL`]
    /// as soon as any chain record is present.
    pub fn version(&self) -> u8 {
        if self
            .vars
            .iter()
            .any(|v| v.temporal != TemporalKind::Independent)
        {
            VERSION_TEMPORAL
        } else {
            VERSION
        }
    }

    /// Serialize the TOC body (without superblock or checksum) in the
    /// layout of [`Toc::version`].
    pub fn encode(&self) -> Vec<u8> {
        let version = self.version();
        let mut w = ByteWriter::new();
        w.put_varint(self.vars.len() as u64);
        for v in &self.vars {
            w.put_len_prefixed(v.name.as_bytes());
            w.put_u8(v.scalar_tag);
            w.put_u8(v.shape.ndim() as u8);
            for &d in v.shape.dims() {
                w.put_varint(d as u64);
            }
            w.put_f64(v.abs_eb);
            w.put_u8(v.compressor as u8);
            if version == VERSION_TEMPORAL {
                w.put_u8(v.temporal.tag());
                if let TemporalKind::Delta { prev } = &v.temporal {
                    w.put_len_prefixed(prev.as_bytes());
                }
            }
            w.put_varint(v.chunk_side as u64);
            w.put_varint(v.chunks.len() as u64);
            for c in &v.chunks {
                w.put_varint(c.offset);
                w.put_varint(c.len);
                w.put_u64(c.checksum);
            }
        }
        w.finish()
    }

    /// Parse and validate a TOC body against the payload extent.
    /// `version` is the container version from the superblock and
    /// selects the variable-record layout.
    pub fn decode(bytes: &[u8], payload_len: u64, version: u8) -> Result<Toc> {
        let mut r = ByteReader::new(bytes);
        let var_count = r.get_varint()?;
        // One chunk entry is >= 10 bytes; an absurd count is corruption,
        // not something to try allocating for.
        if var_count > bytes.len() as u64 {
            return Err(ArchiveError::Corrupt("implausible variable count"));
        }
        let mut vars = Vec::with_capacity(var_count as usize);
        for _ in 0..var_count {
            let name = std::str::from_utf8(r.get_len_prefixed()?)
                .map_err(|_| ArchiveError::Corrupt("variable name is not UTF-8"))?
                .to_string();
            if name.is_empty() {
                return Err(ArchiveError::Corrupt("empty variable name"));
            }
            let scalar_tag = r.get_u8()?;
            let ndim = r.get_u8()? as usize;
            if ndim == 0 || ndim > qoz_tensor::MAX_NDIM {
                return Err(ArchiveError::Corrupt("bad variable rank"));
            }
            let mut dims = Vec::with_capacity(ndim);
            for _ in 0..ndim {
                let d = r.get_varint()? as usize;
                if d == 0 || d > (1 << 32) {
                    return Err(ArchiveError::Corrupt("bad variable dimension"));
                }
                dims.push(d);
            }
            // Checked product: dims are each <= 2^32, so four of them can
            // wrap usize. A TOC is ~30 bytes of trivially re-checksummable
            // plaintext — declared sizes must be validated, not trusted,
            // before any consumer allocates for them.
            let elems = dims
                .iter()
                .try_fold(1u128, |acc, &d| acc.checked_mul(d as u128))
                .filter(|&e| e <= MAX_VAR_ELEMS as u128)
                .ok_or(ArchiveError::Corrupt("implausible variable size"))?;
            debug_assert!(elems > 0);
            let shape = Shape::new(&dims);
            let abs_eb = r.get_f64()?;
            if !(abs_eb.is_finite() && abs_eb > 0.0) {
                return Err(ArchiveError::Corrupt("bad error bound"));
            }
            let compressor = CompressorId::from_u8(r.get_u8()?)?;
            let temporal = if version == VERSION_TEMPORAL {
                match r.get_u8()? {
                    0 => TemporalKind::Independent,
                    1 => TemporalKind::Keyframe,
                    2 => {
                        let prev = std::str::from_utf8(r.get_len_prefixed()?)
                            .map_err(|_| ArchiveError::Corrupt("predecessor name is not UTF-8"))?
                            .to_string();
                        // The predecessor must already be parsed (chains
                        // are stored keyframe-first), share the member's
                        // shape and element type, and anchor an acyclic
                        // chain — earlier-only references cannot cycle.
                        let p = vars.iter().find(|v: &&VarMeta| v.name == prev).ok_or(
                            ArchiveError::Corrupt("delta predecessor not found earlier in TOC"),
                        )?;
                        if p.shape != shape || p.scalar_tag != scalar_tag {
                            return Err(ArchiveError::Corrupt(
                                "delta predecessor shape/type mismatch",
                            ));
                        }
                        TemporalKind::Delta { prev }
                    }
                    _ => return Err(ArchiveError::Corrupt("unknown temporal kind")),
                }
            } else {
                TemporalKind::Independent
            };
            let chunk_side = r.get_varint()? as usize;
            if chunk_side == 0 {
                return Err(ArchiveError::Corrupt("zero chunk side"));
            }
            let expected_chunks = shape
                .dims()
                .iter()
                .try_fold(1usize, |acc, &d| acc.checked_mul(d.div_ceil(chunk_side)))
                .ok_or(ArchiveError::Corrupt("chunk grid overflow"))?;
            let chunk_count = r.get_varint()? as usize;
            if chunk_count != expected_chunks {
                return Err(ArchiveError::Corrupt("chunk count does not match grid"));
            }
            // Every entry takes >= 10 encoded bytes (two varints + u64);
            // a count the remaining TOC cannot possibly hold is corruption
            // — reject it before allocating the index.
            if chunk_count > r.remaining() / 10 {
                return Err(ArchiveError::Corrupt("implausible chunk count"));
            }
            let mut chunks = Vec::with_capacity(chunk_count);
            for _ in 0..chunk_count {
                let offset = r.get_varint()?;
                let len = r.get_varint()?;
                let checksum = r.get_u64()?;
                if len == 0 {
                    return Err(ArchiveError::Corrupt("zero-length chunk"));
                }
                let end = offset
                    .checked_add(len)
                    .ok_or(ArchiveError::Corrupt("chunk extent overflow"))?;
                if end > payload_len {
                    return Err(ArchiveError::Corrupt("chunk extends past payload"));
                }
                chunks.push(ChunkEntry {
                    offset,
                    len,
                    checksum,
                });
            }
            if vars.iter().any(|v: &VarMeta| v.name == name) {
                return Err(ArchiveError::Corrupt("duplicate variable name"));
            }
            vars.push(VarMeta {
                name,
                scalar_tag,
                shape,
                abs_eb,
                compressor,
                chunk_side,
                chunks,
                temporal,
            });
        }
        if r.remaining() != 0 {
            return Err(ArchiveError::Corrupt("trailing bytes after TOC"));
        }
        Ok(Toc { vars })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_toc() -> Toc {
        Toc {
            vars: vec![VarMeta {
                name: "temperature".into(),
                scalar_tag: 0x32,
                shape: Shape::d3(10, 12, 14),
                abs_eb: 1e-3,
                compressor: CompressorId::Qoz,
                chunk_side: 8,
                chunks: (0..8)
                    .map(|k| ChunkEntry {
                        offset: k * 100,
                        len: 100,
                        checksum: 0xDEAD_0000 + k,
                    })
                    .collect(),
                temporal: TemporalKind::Independent,
            }],
        }
    }

    #[test]
    fn toc_roundtrip() {
        let toc = sample_toc();
        let bytes = toc.encode();
        assert_eq!(Toc::decode(&bytes, 800, VERSION).unwrap(), toc);
    }

    #[test]
    fn toc_rejects_chunk_past_payload() {
        let toc = sample_toc();
        let bytes = toc.encode();
        assert!(matches!(
            Toc::decode(&bytes, 799, VERSION),
            Err(ArchiveError::Corrupt(_))
        ));
    }

    #[test]
    fn toc_rejects_wrong_chunk_count() {
        let mut toc = sample_toc();
        toc.vars[0].chunks.pop();
        let bytes = toc.encode();
        assert!(Toc::decode(&bytes, 800, VERSION).is_err());
    }

    #[test]
    fn toc_rejects_duplicate_names() {
        let mut toc = sample_toc();
        let dup = toc.vars[0].clone();
        toc.vars.push(dup);
        assert!(Toc::decode(&toc.encode(), 1600, VERSION).is_err());
    }

    #[test]
    fn toc_truncation_always_errors() {
        let bytes = sample_toc().encode();
        for cut in 0..bytes.len() {
            assert!(
                Toc::decode(&bytes[..cut], 800, VERSION).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    /// Hand-encode a minimal single-variable TOC prefix up to and
    /// including the dims, so tests can probe size validation with dims
    /// no legitimate `Shape` could represent.
    fn encode_var_prefix(dims: &[u64]) -> ByteWriter {
        let mut w = ByteWriter::new();
        w.put_varint(1); // var_count
        w.put_len_prefixed(b"v");
        w.put_u8(0x32); // f32
        w.put_u8(dims.len() as u8);
        for &d in dims {
            w.put_varint(d);
        }
        w
    }

    #[test]
    fn giant_declared_dims_rejected_before_allocation() {
        // Dims of 2^32 each wrap the usize element product; the decoder
        // must refuse such a TOC (which is ~40 bytes of plaintext with a
        // recomputable checksum — not trustworthy) instead of letting a
        // reader allocate for it.
        let bytes = encode_var_prefix(&[1 << 32, 1 << 32, 1 << 32]).finish();
        assert_eq!(
            Toc::decode(&bytes, 800, VERSION),
            Err(ArchiveError::Corrupt("implausible variable size"))
        );
        // Above the per-variable cap with individually-legal dims.
        let bytes = encode_var_prefix(&[32, 1 << 32]).finish();
        assert_eq!(
            Toc::decode(&bytes, 800, VERSION),
            Err(ArchiveError::Corrupt("implausible variable size"))
        );
        // At the cap is still structurally acceptable (fails later on
        // truncation, not on size).
        let bytes = encode_var_prefix(&[16, 1 << 32]).finish();
        assert_ne!(
            Toc::decode(&bytes, 800, VERSION),
            Err(ArchiveError::Corrupt("implausible variable size"))
        );
    }

    #[test]
    fn implausible_chunk_count_rejected_before_allocation() {
        // A grid the TOC's remaining bytes could never index must be
        // rejected up front rather than pre-allocating the entry table:
        // 2^10 cubed elements passes the size cap, chunk_side 1 makes the
        // grid 2^30 chunks, and the TOC holds zero entry bytes.
        let mut w = encode_var_prefix(&[1 << 10, 1 << 10, 1 << 10]);
        w.put_f64(1e-3);
        w.put_u8(CompressorId::Sz3 as u8);
        w.put_varint(1); // chunk_side
        w.put_varint(1 << 30); // chunk_count matches the grid
        let bytes = w.finish();
        assert_eq!(
            Toc::decode(&bytes, u64::MAX, VERSION),
            Err(ArchiveError::Corrupt("implausible chunk count"))
        );
    }

    #[test]
    fn snapshot_names_roundtrip() {
        assert_eq!(snapshot_name("rho", 12), "rho@t12");
        assert_eq!(parse_snapshot_name("rho@t12"), Some(("rho", 12)));
        // Base names may themselves contain '@t': the *last* marker wins,
        // so composed names always parse back to what composed them.
        assert_eq!(parse_snapshot_name("a@t1@t2"), Some(("a@t1", 2)));
        for bad in ["rho", "rho@t", "@t3", "rho@tx7", "rho@t-1", "rho@t+1"] {
            assert_eq!(parse_snapshot_name(bad), None, "{bad}");
        }
    }

    #[test]
    fn toc_lists_snapshots_sorted() {
        let mut toc = sample_toc();
        let base = toc.vars[0].clone();
        for (i, t) in [(0, 10u64), (1, 2), (2, 7)] {
            let mut v = base.clone();
            v.name = snapshot_name("temperature", t);
            v.abs_eb = 1e-3 + i as f64;
            toc.vars.push(v);
        }
        let snaps = toc.snapshots("temperature");
        assert_eq!(
            snaps.iter().map(|&(t, _)| t).collect::<Vec<u64>>(),
            vec![2, 7, 10]
        );
        // The plain variable itself is not a snapshot.
        assert_eq!(toc.snapshots("nope"), vec![]);
    }

    #[test]
    fn fnv_matches_known_vector() {
        // FNV-1a 64 of the empty string and of "a" are published constants.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn chunk_regions_match_entry_count() {
        let toc = sample_toc();
        assert_eq!(toc.vars[0].chunk_regions().len(), toc.vars[0].chunks.len());
    }

    #[test]
    fn temporal_toc_roundtrips_and_bumps_version() {
        let mut toc = sample_toc();
        assert_eq!(toc.version(), VERSION, "all-independent stays v1");
        let mut key = toc.vars[0].clone();
        key.name = "u@t0".into();
        key.temporal = TemporalKind::Keyframe;
        let mut delta = toc.vars[0].clone();
        delta.name = "u@t1".into();
        delta.temporal = TemporalKind::Delta {
            prev: "u@t0".into(),
        };
        toc.vars.push(key);
        toc.vars.push(delta);
        assert_eq!(toc.version(), VERSION_TEMPORAL);
        let bytes = toc.encode();
        assert_eq!(Toc::decode(&bytes, 800, VERSION_TEMPORAL).unwrap(), toc);
    }

    #[test]
    fn delta_predecessor_must_appear_earlier_in_toc() {
        let mut toc = sample_toc();
        toc.vars[0].temporal = TemporalKind::Delta {
            prev: "missing".into(),
        };
        assert_eq!(
            Toc::decode(&toc.encode(), 800, VERSION_TEMPORAL),
            Err(ArchiveError::Corrupt(
                "delta predecessor not found earlier in TOC"
            ))
        );
    }

    #[test]
    fn delta_predecessor_shape_mismatch_rejected() {
        let mut toc = sample_toc();
        let mut delta = toc.vars[0].clone();
        delta.name = "d".into();
        // Same chunk grid (2x2x2 at side 8), different extent — the
        // temporal check must fire before chunk validation would pass.
        delta.shape = Shape::d3(10, 12, 13);
        delta.temporal = TemporalKind::Delta {
            prev: "temperature".into(),
        };
        toc.vars.push(delta);
        assert_eq!(
            Toc::decode(&toc.encode(), 1600, VERSION_TEMPORAL),
            Err(ArchiveError::Corrupt(
                "delta predecessor shape/type mismatch"
            ))
        );
    }

    #[test]
    fn unknown_temporal_kind_byte_rejected() {
        let mut toc = sample_toc();
        toc.vars[0].temporal = TemporalKind::Keyframe;
        let v2 = toc.encode();
        toc.vars[0].temporal = TemporalKind::Independent;
        let v1 = toc.encode();
        // The encodings first diverge exactly at the inserted kind byte.
        let idx = v1.iter().zip(&v2).position(|(a, b)| a != b).unwrap();
        let mut bytes = v2.clone();
        bytes[idx] = 9;
        assert_eq!(
            Toc::decode(&bytes, 800, VERSION_TEMPORAL),
            Err(ArchiveError::Corrupt("unknown temporal kind"))
        );
    }
}
