//! Appending to existing QZAR archives.
//!
//! A QZAR index stores chunk offsets relative to the *payload* start,
//! not the file start — which is exactly what makes append cheap: new
//! variables' chunk blobs go behind the existing payload, every old
//! offset stays valid verbatim, and only the superblock + TOC (a few
//! hundred bytes) are rewritten. [`ArchiveAppender`] wraps an open
//! [`ArchiveReader`] plus a staging [`ArchiveWriter`]; on write-out the
//! old payload is streamed from the source in bounded pieces, so an
//! append never materializes the existing archive in memory.
//!
//! Combined with the [`snapshot_name`] convention (`"{base}@t{t}"`,
//! one ordinary variable per timestep sharing the single TOC), this
//! turns a QZAR file into a growable time-series store: each simulation
//! step appends its snapshot, and readers serve region queries over any
//! timestep — including concurrently, through one shared reader handle.

use crate::format::{fnv1a, snapshot_name, Toc, MAGIC, SUPERBLOCK_LEN, VERSION};
use crate::reader::ArchiveReader;
use crate::source::{ByteSource, FileSource, SliceSource};
use crate::writer::ArchiveWriter;
use crate::{ArchiveError, Result};
use qoz_codec::stream::{Compressor, ErrorBound};
use qoz_codec::ByteWriter;
use qoz_tensor::{NdArray, Scalar};

/// Streaming copy granularity for the existing payload during write-out.
const COPY_CHUNK: usize = 1 << 20;

/// Grows an existing archive: stage new variables, then write the
/// rewritten container (old payload kept in place, byte-for-byte).
#[derive(Debug)]
pub struct ArchiveAppender<S: ByteSource> {
    reader: ArchiveReader<S>,
    writer: ArchiveWriter,
}

impl ArchiveAppender<FileSource> {
    /// Open an archive file for appending.
    pub fn open(path: &str) -> Result<Self> {
        Ok(Self::new(ArchiveReader::open(path)?))
    }
}

impl<'a> ArchiveAppender<SliceSource<'a>> {
    /// Append to an archive already held in memory.
    pub fn from_bytes(bytes: &'a [u8]) -> Result<Self> {
        Ok(Self::new(ArchiveReader::from_bytes(bytes)?))
    }
}

impl<S: ByteSource> ArchiveAppender<S> {
    /// Wrap a parsed reader for appending.
    pub fn new(reader: ArchiveReader<S>) -> Self {
        ArchiveAppender {
            reader,
            writer: ArchiveWriter::new(),
        }
    }

    /// Override the chunk grid side for *newly added* variables
    /// (existing variables keep the side they were written with).
    ///
    /// # Panics
    /// Panics if `side` is 0.
    pub fn with_chunk_side(mut self, side: usize) -> Self {
        self.writer = self.writer.with_chunk_side(side);
        self
    }

    /// Override the number of compression worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.writer = self.writer.with_threads(threads);
        self
    }

    /// The archive being appended to (TOC access, region reads of
    /// already-stored variables).
    pub fn existing(&self) -> &ArchiveReader<S> {
        &self.reader
    }

    /// Variables staged by this appender so far (offsets still relative
    /// to the *staged* payload; they are rebased on write-out).
    pub fn staged(&self) -> &Toc {
        self.writer.toc()
    }

    /// Compress `data` under `bound` and stage it as a new variable
    /// named `name`. Rejects names already present in the existing
    /// archive or staged in this appender.
    pub fn add_variable<T, C>(
        &mut self,
        name: &str,
        data: &NdArray<T>,
        compressor: &C,
        bound: ErrorBound,
    ) -> Result<()>
    where
        T: Scalar,
        C: Compressor<T> + Sync + ?Sized,
    {
        if self.reader.toc().vars.iter().any(|v| v.name == name) {
            return Err(ArchiveError::DuplicateVariable(name.to_string()));
        }
        self.writer.add_variable(name, data, compressor, bound)
    }

    /// Stage `data` as timestep `t` of the time series `base` (the
    /// variable is named [`snapshot_name`]`(base, t)`; list stored
    /// steps back with [`Toc::snapshots`]).
    pub fn add_snapshot<T, C>(
        &mut self,
        base: &str,
        t: u64,
        data: &NdArray<T>,
        compressor: &C,
        bound: ErrorBound,
    ) -> Result<()>
    where
        T: Scalar,
        C: Compressor<T> + Sync + ?Sized,
    {
        self.add_variable(&snapshot_name(base, t), data, compressor, bound)
    }

    /// The merged TOC the rewritten archive will carry: existing
    /// variables verbatim, staged variables rebased behind them.
    pub fn merged_toc(&self) -> Toc {
        let base = self.reader.payload_len();
        let mut toc = self.reader.toc().clone();
        for v in &self.writer.toc().vars {
            let mut v = v.clone();
            for c in &mut v.chunks {
                c.offset += base;
            }
            toc.vars.push(v);
        }
        toc
    }

    /// Serialize the grown archive into any byte sink: new superblock
    /// and TOC, then the existing payload streamed from the source in
    /// bounded pieces, then the staged payload. Returns bytes written.
    pub fn write_into(&self, sink: &mut dyn std::io::Write) -> Result<u64> {
        let io_err = |e: std::io::Error| ArchiveError::Io(format!("archive sink: {e}"));
        let toc_bytes = self.merged_toc().encode();
        let mut sb = ByteWriter::with_capacity(SUPERBLOCK_LEN);
        sb.put_bytes(&MAGIC);
        sb.put_u8(VERSION);
        sb.put_u8(0); // flags, reserved
        sb.put_u64(toc_bytes.len() as u64);
        let sb = sb.finish();
        sink.write_all(&sb).map_err(io_err)?;
        sink.write_all(&toc_bytes).map_err(io_err)?;
        sink.write_all(&fnv1a(&toc_bytes).to_le_bytes())
            .map_err(io_err)?;
        let old_len = self.reader.payload_len();
        let mut off = 0u64;
        while off < old_len {
            let n = (old_len - off).min(COPY_CHUNK as u64) as usize;
            let piece = self.reader.read_payload(off, n)?;
            sink.write_all(&piece).map_err(io_err)?;
            off += n as u64;
        }
        sink.write_all(self.writer.payload()).map_err(io_err)?;
        Ok((sb.len() + toc_bytes.len() + 8) as u64 + old_len + self.writer.payload().len() as u64)
    }

    /// Serialize the grown archive into one in-memory buffer.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_into(&mut out)
            .expect("writing to a Vec cannot fail for slice-backed sources");
        out
    }

    /// Stream the grown archive to `path` via a temp file + atomic
    /// rename; returns bytes written. `path` may be the very archive
    /// being appended to — the old payload is still being read from it
    /// while the temp file is written, and the rename swaps the grown
    /// archive in whole, so a crash mid-append never leaves a torn
    /// container behind.
    pub fn write_to(self, path: &str) -> Result<u64> {
        let tmp = format!("{path}.{}.qztmp", std::process::id());
        let io_err = |e: std::io::Error| ArchiveError::Io(format!("cannot write {path}: {e}"));
        let written = (|| {
            let file = std::fs::File::create(&tmp).map_err(io_err)?;
            let mut sink = std::io::BufWriter::new(file);
            let written = self.write_into(&mut sink)?;
            std::io::Write::flush(&mut sink).map_err(io_err)?;
            std::fs::rename(&tmp, path).map_err(io_err)?;
            Ok(written)
        })();
        if written.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_tensor::{Region, Shape};

    fn field(seed: usize) -> NdArray<f32> {
        NdArray::from_fn(Shape::d3(9, 8, 7), |i| {
            ((i[0] + seed) as f32 * 0.3).sin() + (i[1] as f32 * 0.2).cos() * i[2] as f32 * 0.1
        })
    }

    fn base_archive() -> Vec<u8> {
        let mut w = ArchiveWriter::new().with_chunk_side(4);
        w.add_variable(
            "rho",
            &field(0),
            &qoz_sz3::Sz3::default(),
            ErrorBound::Abs(1e-3),
        )
        .unwrap();
        w.finish()
    }

    #[test]
    fn append_preserves_old_payload_bytes() {
        let base = base_archive();
        let old = ArchiveReader::from_bytes(&base).unwrap();
        let old_toc = old.toc().clone();

        let mut app = ArchiveAppender::from_bytes(&base)
            .unwrap()
            .with_chunk_side(4);
        app.add_variable(
            "vel",
            &field(3),
            &qoz_sz3::Sz3::default(),
            ErrorBound::Abs(1e-3),
        )
        .unwrap();
        let grown = app.finish();

        let r = ArchiveReader::from_bytes(&grown).unwrap();
        // Old variable: identical index entries, identical decoded data.
        assert_eq!(r.toc().vars[0], old_toc.vars[0]);
        let a: NdArray<f32> = old.read_full("rho").unwrap();
        let b: NdArray<f32> = r.read_full("rho").unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        // New variable serves reads and verifies.
        let v: NdArray<f32> = r.read_full("vel").unwrap();
        assert!(field(3).max_abs_diff(&v) <= 1e-3 * (1.0 + 1e-9));
        assert_eq!(r.verify().unwrap().vars, 2);
    }

    #[test]
    fn append_rejects_existing_and_staged_duplicates() {
        let base = base_archive();
        let mut app = ArchiveAppender::from_bytes(&base).unwrap();
        let c = qoz_sz3::Sz3::default();
        assert!(matches!(
            app.add_variable("rho", &field(1), &c, ErrorBound::Abs(1e-3)),
            Err(ArchiveError::DuplicateVariable(_))
        ));
        app.add_variable("p", &field(1), &c, ErrorBound::Abs(1e-3))
            .unwrap();
        assert!(matches!(
            app.add_variable("p", &field(2), &c, ErrorBound::Abs(1e-3)),
            Err(ArchiveError::DuplicateVariable(_))
        ));
    }

    #[test]
    fn snapshots_accumulate_across_appends() {
        let c = qoz_sz3::Sz3::default();
        let mut w = ArchiveWriter::new().with_chunk_side(4);
        w.add_variable(&snapshot_name("u", 0), &field(0), &c, ErrorBound::Abs(1e-3))
            .unwrap();
        let mut bytes = w.finish();
        for t in 1..3u64 {
            let mut app = ArchiveAppender::from_bytes(&bytes)
                .unwrap()
                .with_chunk_side(4);
            app.add_snapshot("u", t, &field(t as usize), &c, ErrorBound::Abs(1e-3))
                .unwrap();
            bytes = app.finish();
        }
        let r = ArchiveReader::from_bytes(&bytes).unwrap();
        let snaps = r.toc().snapshots("u");
        assert_eq!(
            snaps.iter().map(|&(t, _)| t).collect::<Vec<u64>>(),
            vec![0, 1, 2]
        );
        for (t, meta) in snaps {
            let got: NdArray<f32> = r.read_full(&meta.name).unwrap();
            assert!(field(t as usize).max_abs_diff(&got) <= 1e-3 * (1.0 + 1e-9));
        }
    }

    #[test]
    fn append_to_file_in_place_is_atomic() {
        let dir = std::env::temp_dir();
        let path = dir
            .join(format!("qoz_append_{}.qza", std::process::id()))
            .to_string_lossy()
            .into_owned();
        std::fs::write(&path, base_archive()).unwrap();

        let mut app = ArchiveAppender::open(&path).unwrap().with_chunk_side(4);
        app.add_variable(
            "vel",
            &field(5),
            &qoz_sz3::Sz3::default(),
            ErrorBound::Abs(1e-3),
        )
        .unwrap();
        let written = app.write_to(&path).unwrap();
        assert_eq!(
            written,
            std::fs::metadata(&path).unwrap().len(),
            "reported size must match the file"
        );

        let r = ArchiveReader::open(&path).unwrap();
        assert_eq!(r.toc().vars.len(), 2);
        let roi = Region::new(&[2, 2, 2], &[4, 4, 4]);
        let slab: NdArray<f32> = r.read_region("vel", &roi).unwrap();
        assert_eq!(slab.as_slice(), {
            let full: NdArray<f32> = r.read_full("vel").unwrap();
            full.extract_region(&roi).into_vec()
        });
        std::fs::remove_file(&path).ok();
    }
}
