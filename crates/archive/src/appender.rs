//! Appending to existing QZAR archives.
//!
//! A QZAR index stores chunk offsets relative to the *payload* start,
//! not the file start — which is exactly what makes append cheap: new
//! variables' chunk blobs go behind the existing payload, every old
//! offset stays valid verbatim, and only the superblock + TOC (a few
//! hundred bytes) are rewritten. [`ArchiveAppender`] wraps an open
//! [`ArchiveReader`] plus a staging [`ArchiveWriter`]; on write-out the
//! old payload is streamed from the source in bounded pieces, so an
//! append never materializes the existing archive in memory.
//!
//! Combined with the [`snapshot_name`] convention (`"{base}@t{t}"`,
//! one ordinary variable per timestep sharing the single TOC), this
//! turns a QZAR file into a growable time-series store: each simulation
//! step appends its snapshot, and readers serve region queries over any
//! timestep — including concurrently, through one shared reader handle.

use crate::format::{fnv1a, snapshot_name, TemporalKind, Toc, VarMeta, MAGIC, SUPERBLOCK_LEN};
use crate::reader::ArchiveReader;
use crate::source::{ByteSource, FileSource, SliceSource};
use crate::writer::ArchiveWriter;
use crate::{ArchiveError, Result};
use qoz_codec::stream::{Compressor, ErrorBound};
use qoz_codec::ByteWriter;
use qoz_temporal::{accumulate_residual, form_residual, TemporalSession};
use qoz_tensor::{NdArray, Scalar};

/// Streaming copy granularity for the existing payload during write-out.
const COPY_CHUNK: usize = 1 << 20;

/// Count a chained-snapshot outcome on the same telemetry series the
/// in-memory `TemporalSession` uses, so archive and stream chains share
/// one `qoz_temporal_outcomes_total{mode}` view.
fn record_chain_outcome(mode: &'static str) {
    qoz_telemetry::global()
        .counter("qoz_temporal_outcomes_total", &[("mode", mode)])
        .inc();
}

/// Grows an existing archive: stage new variables, then write the
/// rewritten container (old payload kept in place, byte-for-byte).
#[derive(Debug)]
pub struct ArchiveAppender<S: ByteSource> {
    reader: ArchiveReader<S>,
    writer: ArchiveWriter,
}

impl ArchiveAppender<FileSource> {
    /// Open an archive file for appending.
    pub fn open(path: &str) -> Result<Self> {
        Ok(Self::new(ArchiveReader::open(path)?))
    }
}

impl<'a> ArchiveAppender<SliceSource<'a>> {
    /// Append to an archive already held in memory.
    pub fn from_bytes(bytes: &'a [u8]) -> Result<Self> {
        Ok(Self::new(ArchiveReader::from_bytes(bytes)?))
    }
}

impl<S: ByteSource> ArchiveAppender<S> {
    /// Wrap a parsed reader for appending.
    pub fn new(reader: ArchiveReader<S>) -> Self {
        ArchiveAppender {
            reader,
            writer: ArchiveWriter::new(),
        }
    }

    /// Override the chunk grid side for *newly added* variables
    /// (existing variables keep the side they were written with).
    ///
    /// # Panics
    /// Panics if `side` is 0.
    pub fn with_chunk_side(mut self, side: usize) -> Self {
        self.writer = self.writer.with_chunk_side(side);
        self
    }

    /// Override the number of compression worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.writer = self.writer.with_threads(threads);
        self
    }

    /// The archive being appended to (TOC access, region reads of
    /// already-stored variables).
    pub fn existing(&self) -> &ArchiveReader<S> {
        &self.reader
    }

    /// Variables staged by this appender so far (offsets still relative
    /// to the *staged* payload; they are rebased on write-out).
    pub fn staged(&self) -> &Toc {
        self.writer.toc()
    }

    /// Compress `data` under `bound` and stage it as a new variable
    /// named `name`. Rejects names already present in the existing
    /// archive or staged in this appender.
    pub fn add_variable<T, C>(
        &mut self,
        name: &str,
        data: &NdArray<T>,
        compressor: &C,
        bound: ErrorBound,
    ) -> Result<()>
    where
        T: Scalar,
        C: Compressor<T> + Sync + ?Sized,
    {
        if self.reader.toc().vars.iter().any(|v| v.name == name) {
            return Err(ArchiveError::DuplicateVariable(name.to_string()));
        }
        self.writer.add_variable(name, data, compressor, bound)
    }

    /// Stage `data` as timestep `t` of the time series `base` (the
    /// variable is named [`snapshot_name`]`(base, t)`; list stored
    /// steps back with [`Toc::snapshots`]).
    pub fn add_snapshot<T, C>(
        &mut self,
        base: &str,
        t: u64,
        data: &NdArray<T>,
        compressor: &C,
        bound: ErrorBound,
    ) -> Result<()>
    where
        T: Scalar,
        C: Compressor<T> + Sync + ?Sized,
    {
        self.add_variable(&snapshot_name(base, t), data, compressor, bound)
    }

    /// Stage `data` as timestep `t` of `base`, delta-coded against the
    /// latest earlier snapshot of the series when that pays off.
    ///
    /// The predecessor's **reconstruction** (chain-resolved across both
    /// stored and staged snapshots) is rebuilt, the residual estimated
    /// with the same sampled keyframe policy as
    /// `qoz_temporal::TemporalSession`, and the snapshot stored either
    /// as a [`TemporalKind::Keyframe`] or as a [`TemporalKind::Delta`]
    /// whose chunks hold the residual field, compressed at the absolute
    /// bound resolved against the *snapshot* — so any
    /// `ArchiveReader::read_region` on the chain honors `bound` against
    /// the raw data, however many deltas deep. Returns the kind stored.
    ///
    /// The first snapshot of a series (or one whose shape/type differs
    /// from its predecessor) is always a keyframe.
    pub fn add_snapshot_chained<T, C>(
        &mut self,
        base: &str,
        t: u64,
        data: &NdArray<T>,
        compressor: &C,
        bound: ErrorBound,
    ) -> Result<TemporalKind>
    where
        T: Scalar,
        C: Compressor<T> + Sync + ?Sized,
    {
        let name = snapshot_name(base, t);
        if self.reader.toc().vars.iter().any(|v| v.name == name) {
            return Err(ArchiveError::DuplicateVariable(name));
        }
        // The chain predecessor: the latest snapshot of `base` strictly
        // before `t`, staged or already stored.
        let prev = self
            .reader
            .toc()
            .snapshots(base)
            .into_iter()
            .chain(self.writer.toc().snapshots(base))
            .filter(|&(pt, _)| pt < t)
            .max_by_key(|&(pt, _)| pt)
            .map(|(_, v)| (v.name.clone(), v.shape, v.scalar_tag));
        let usable = prev
            .as_ref()
            .filter(|(_, shape, tag)| *shape == data.shape() && *tag == T::TYPE_TAG);
        let keyframe = |s: &mut Self| -> Result<TemporalKind> {
            s.writer
                .add_variable_kind(&name, data, compressor, bound, TemporalKind::Keyframe)?;
            Ok(TemporalKind::Keyframe)
        };
        let Some((prev_name, _, _)) = usable.cloned() else {
            record_chain_outcome("keyframe");
            return keyframe(self);
        };
        let prev_recon: NdArray<T> = self.reconstruct_snapshot(&prev_name)?;
        if !TemporalSession::residual_beats_spatial(data, &prev_recon) {
            record_chain_outcome("fallback");
            return keyframe(self);
        }
        // Resolve the bound against the snapshot, never the residual's
        // own (much smaller) value range — the composed-bound contract.
        let abs = bound.absolute(data);
        let mut residual = NdArray::zeros(data.shape());
        form_residual(&mut residual, data, &prev_recon)?;
        self.writer.add_variable_kind(
            &name,
            &residual,
            compressor,
            ErrorBound::Abs(abs),
            TemporalKind::Delta {
                prev: prev_name.clone(),
            },
        )?;
        record_chain_outcome("delta");
        Ok(TemporalKind::Delta { prev: prev_name })
    }

    /// Rebuild the reconstruction of a snapshot variable, resolving its
    /// temporal chain across both the existing archive and the staged
    /// (not yet written) variables of this appender.
    pub fn reconstruct_snapshot<T: Scalar>(&self, name: &str) -> Result<NdArray<T>> {
        match self.writer.toc().var(name) {
            Ok(v) => {
                let mut field = self.staged_full::<T>(v)?;
                if let TemporalKind::Delta { prev } = &v.temporal {
                    // Staged deltas only ever reference snapshots staged
                    // earlier or already stored, so this recursion walks
                    // strictly backward and terminates.
                    let mut acc = self.reconstruct_snapshot::<T>(prev)?;
                    accumulate_residual(&mut acc, &field)?;
                    field = acc;
                }
                Ok(field)
            }
            // Stored variables chain-resolve inside the reader.
            Err(_) => self.reader.read_full(name),
        }
    }

    /// Decode a staged variable's chunks straight from the staging
    /// payload (raw: a delta variable yields its residual field).
    fn staged_full<T: Scalar>(&self, v: &VarMeta) -> Result<NdArray<T>> {
        if v.scalar_tag != T::TYPE_TAG {
            return Err(ArchiveError::TypeMismatch {
                stored: v.scalar_tag,
                requested: T::TYPE_TAG,
            });
        }
        let codec = qoz_api::BackendRegistry::new().codec::<T>(v.compressor);
        let payload = self.writer.payload();
        let mut out = NdArray::zeros(v.shape);
        for (entry, region) in v.chunks.iter().zip(v.chunk_regions()) {
            let blob = &payload[entry.offset as usize..(entry.offset + entry.len) as usize];
            let chunk = codec.decompress(blob)?;
            if chunk.shape().dims() != region.size() {
                return Err(ArchiveError::Corrupt("staged chunk disagrees with index"));
            }
            out.insert_region(&region, &chunk);
        }
        Ok(out)
    }

    /// The merged TOC the rewritten archive will carry: existing
    /// variables verbatim, staged variables rebased behind them.
    pub fn merged_toc(&self) -> Toc {
        let base = self.reader.payload_len();
        let mut toc = self.reader.toc().clone();
        for v in &self.writer.toc().vars {
            let mut v = v.clone();
            for c in &mut v.chunks {
                c.offset += base;
            }
            toc.vars.push(v);
        }
        toc
    }

    /// Serialize the grown archive into any byte sink: new superblock
    /// and TOC, then the existing payload streamed from the source in
    /// bounded pieces, then the staged payload. Returns bytes written.
    pub fn write_into(&self, sink: &mut dyn std::io::Write) -> Result<u64> {
        let io_err = |e: std::io::Error| ArchiveError::Io(format!("archive sink: {e}"));
        let merged = self.merged_toc();
        let toc_bytes = merged.encode();
        let mut sb = ByteWriter::with_capacity(SUPERBLOCK_LEN);
        sb.put_bytes(&MAGIC);
        sb.put_u8(merged.version());
        sb.put_u8(0); // flags, reserved
        sb.put_u64(toc_bytes.len() as u64);
        let sb = sb.finish();
        sink.write_all(&sb).map_err(io_err)?;
        sink.write_all(&toc_bytes).map_err(io_err)?;
        sink.write_all(&fnv1a(&toc_bytes).to_le_bytes())
            .map_err(io_err)?;
        let old_len = self.reader.payload_len();
        let mut off = 0u64;
        while off < old_len {
            let n = (old_len - off).min(COPY_CHUNK as u64) as usize;
            let piece = self.reader.read_payload(off, n)?;
            sink.write_all(&piece).map_err(io_err)?;
            off += n as u64;
        }
        sink.write_all(self.writer.payload()).map_err(io_err)?;
        Ok((sb.len() + toc_bytes.len() + 8) as u64 + old_len + self.writer.payload().len() as u64)
    }

    /// Serialize the grown archive into one in-memory buffer.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_into(&mut out)
            .expect("writing to a Vec cannot fail for slice-backed sources");
        out
    }

    /// Stream the grown archive to `path` via a temp file + atomic
    /// rename; returns bytes written. `path` may be the very archive
    /// being appended to — the old payload is still being read from it
    /// while the temp file is written, and the rename swaps the grown
    /// archive in whole, so a crash mid-append never leaves a torn
    /// container behind.
    pub fn write_to(self, path: &str) -> Result<u64> {
        let tmp = format!("{path}.{}.qztmp", std::process::id());
        let io_err = |e: std::io::Error| ArchiveError::Io(format!("cannot write {path}: {e}"));
        let written = (|| {
            let file = std::fs::File::create(&tmp).map_err(io_err)?;
            let mut sink = std::io::BufWriter::new(file);
            let written = self.write_into(&mut sink)?;
            std::io::Write::flush(&mut sink).map_err(io_err)?;
            std::fs::rename(&tmp, path).map_err(io_err)?;
            Ok(written)
        })();
        if written.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_tensor::{Region, Shape};

    fn field(seed: usize) -> NdArray<f32> {
        NdArray::from_fn(Shape::d3(9, 8, 7), |i| {
            ((i[0] + seed) as f32 * 0.3).sin() + (i[1] as f32 * 0.2).cos() * i[2] as f32 * 0.1
        })
    }

    fn base_archive() -> Vec<u8> {
        let mut w = ArchiveWriter::new().with_chunk_side(4);
        w.add_variable(
            "rho",
            &field(0),
            &qoz_sz3::Sz3::default(),
            ErrorBound::Abs(1e-3),
        )
        .unwrap();
        w.finish()
    }

    #[test]
    fn append_preserves_old_payload_bytes() {
        let base = base_archive();
        let old = ArchiveReader::from_bytes(&base).unwrap();
        let old_toc = old.toc().clone();

        let mut app = ArchiveAppender::from_bytes(&base)
            .unwrap()
            .with_chunk_side(4);
        app.add_variable(
            "vel",
            &field(3),
            &qoz_sz3::Sz3::default(),
            ErrorBound::Abs(1e-3),
        )
        .unwrap();
        let grown = app.finish();

        let r = ArchiveReader::from_bytes(&grown).unwrap();
        // Old variable: identical index entries, identical decoded data.
        assert_eq!(r.toc().vars[0], old_toc.vars[0]);
        let a: NdArray<f32> = old.read_full("rho").unwrap();
        let b: NdArray<f32> = r.read_full("rho").unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        // New variable serves reads and verifies.
        let v: NdArray<f32> = r.read_full("vel").unwrap();
        assert!(field(3).max_abs_diff(&v) <= 1e-3 * (1.0 + 1e-9));
        assert_eq!(r.verify().unwrap().vars, 2);
    }

    #[test]
    fn append_rejects_existing_and_staged_duplicates() {
        let base = base_archive();
        let mut app = ArchiveAppender::from_bytes(&base).unwrap();
        let c = qoz_sz3::Sz3::default();
        assert!(matches!(
            app.add_variable("rho", &field(1), &c, ErrorBound::Abs(1e-3)),
            Err(ArchiveError::DuplicateVariable(_))
        ));
        app.add_variable("p", &field(1), &c, ErrorBound::Abs(1e-3))
            .unwrap();
        assert!(matches!(
            app.add_variable("p", &field(2), &c, ErrorBound::Abs(1e-3)),
            Err(ArchiveError::DuplicateVariable(_))
        ));
    }

    #[test]
    fn snapshots_accumulate_across_appends() {
        let c = qoz_sz3::Sz3::default();
        let mut w = ArchiveWriter::new().with_chunk_side(4);
        w.add_variable(&snapshot_name("u", 0), &field(0), &c, ErrorBound::Abs(1e-3))
            .unwrap();
        let mut bytes = w.finish();
        for t in 1..3u64 {
            let mut app = ArchiveAppender::from_bytes(&bytes)
                .unwrap()
                .with_chunk_side(4);
            app.add_snapshot("u", t, &field(t as usize), &c, ErrorBound::Abs(1e-3))
                .unwrap();
            bytes = app.finish();
        }
        let r = ArchiveReader::from_bytes(&bytes).unwrap();
        let snaps = r.toc().snapshots("u");
        assert_eq!(
            snaps.iter().map(|&(t, _)| t).collect::<Vec<u64>>(),
            vec![0, 1, 2]
        );
        for (t, meta) in snaps {
            let got: NdArray<f32> = r.read_full(&meta.name).unwrap();
            assert!(field(t as usize).max_abs_diff(&got) <= 1e-3 * (1.0 + 1e-9));
        }
    }

    /// A smooth field drifting slowly in time — residuals between steps
    /// are near-constant, so the chained path should pick deltas.
    fn drift(t: usize) -> NdArray<f32> {
        NdArray::from_fn(Shape::d3(9, 8, 7), |i| {
            (i[0] as f32 * 0.3).sin()
                + (i[1] as f32 * 0.2).cos() * i[2] as f32 * 0.1
                + t as f32 * 0.01
        })
    }

    #[test]
    fn chained_snapshots_delta_code_and_read_back_within_bound() {
        let c = qoz_sz3::Sz3::default();
        let mut bytes = base_archive();
        for t in 0..4u64 {
            let mut app = ArchiveAppender::from_bytes(&bytes)
                .unwrap()
                .with_chunk_side(4);
            let kind = app
                .add_snapshot_chained("u", t, &drift(t as usize), &c, ErrorBound::Abs(1e-3))
                .unwrap();
            if t == 0 {
                assert_eq!(kind, TemporalKind::Keyframe);
            } else {
                assert_eq!(
                    kind,
                    TemporalKind::Delta {
                        prev: snapshot_name("u", t - 1)
                    }
                );
            }
            bytes = app.finish();
        }
        assert_eq!(bytes[4], crate::format::VERSION_TEMPORAL);
        let r = ArchiveReader::from_bytes(&bytes).unwrap();
        // Every member of the chain honors the bound against its raw
        // snapshot — deltas do not accumulate error.
        for t in 0..4u64 {
            let got: NdArray<f32> = r.read_full(&snapshot_name("u", t)).unwrap();
            assert!(
                drift(t as usize).max_abs_diff(&got) <= 1e-3 * (1.0 + 1e-9),
                "chain member t={t} violates the bound"
            );
        }
        // A region read on a deep delta member resolves its whole chain.
        let roi = Region::new(&[2, 2, 1], &[4, 3, 4]);
        let slab: NdArray<f32> = r.read_region(&snapshot_name("u", 3), &roi).unwrap();
        assert_eq!(slab.as_slice(), {
            let full: NdArray<f32> = r.read_full(&snapshot_name("u", 3)).unwrap();
            full.extract_region(&roi).into_vec()
        });
        assert_eq!(r.verify().unwrap().vars, 5);
    }

    #[test]
    fn chain_within_a_single_append_resolves_staged_predecessors() {
        let c = qoz_sz3::Sz3::default();
        let base = base_archive();
        let mut app = ArchiveAppender::from_bytes(&base)
            .unwrap()
            .with_chunk_side(4);
        for t in 0..3u64 {
            app.add_snapshot_chained("u", t, &drift(t as usize), &c, ErrorBound::Abs(1e-3))
                .unwrap();
        }
        // The staged reconstruction must equal what the written archive
        // serves for the same snapshot.
        let staged: NdArray<f32> = app.reconstruct_snapshot(&snapshot_name("u", 2)).unwrap();
        let r_bytes = app.finish();
        let r = ArchiveReader::from_bytes(&r_bytes).unwrap();
        let stored: NdArray<f32> = r.read_full(&snapshot_name("u", 2)).unwrap();
        assert_eq!(staged.as_slice(), stored.as_slice());
        assert!(drift(2).max_abs_diff(&stored) <= 1e-3 * (1.0 + 1e-9));
    }

    #[test]
    fn regime_change_and_shape_change_fall_back_to_keyframes() {
        let c = qoz_sz3::Sz3::default();
        let base = base_archive();
        let mut app = ArchiveAppender::from_bytes(&base)
            .unwrap()
            .with_chunk_side(4);
        app.add_snapshot_chained("u", 0, &drift(0), &c, ErrorBound::Abs(1e-3))
            .unwrap();
        // Sign-flipped field: the residual is twice as rough as the data,
        // so the sampled estimator must refuse the delta.
        let flipped = NdArray::from_fn(Shape::d3(9, 8, 7), |i| {
            -((i[0] as f32 * 0.3).sin() + (i[1] as f32 * 0.2).cos() * i[2] as f32 * 0.1)
        });
        assert_eq!(
            app.add_snapshot_chained("u", 1, &flipped, &c, ErrorBound::Abs(1e-3))
                .unwrap(),
            TemporalKind::Keyframe
        );
        // A shape change can never delta-code.
        let regridded = NdArray::<f32>::from_fn(Shape::d3(6, 6, 6), |i| i[0] as f32 * 0.1);
        assert_eq!(
            app.add_snapshot_chained("u", 2, &regridded, &c, ErrorBound::Abs(1e-3))
                .unwrap(),
            TemporalKind::Keyframe
        );
        let r_bytes = app.finish();
        let r = ArchiveReader::from_bytes(&r_bytes).unwrap();
        let got: NdArray<f32> = r.read_full(&snapshot_name("u", 1)).unwrap();
        assert!(flipped.max_abs_diff(&got) <= 1e-3 * (1.0 + 1e-9));
    }

    #[test]
    fn independent_append_keeps_container_version_one() {
        let base = base_archive();
        let mut app = ArchiveAppender::from_bytes(&base)
            .unwrap()
            .with_chunk_side(4);
        app.add_variable(
            "vel",
            &field(3),
            &qoz_sz3::Sz3::default(),
            ErrorBound::Abs(1e-3),
        )
        .unwrap();
        let grown = app.finish();
        assert_eq!(
            grown[4],
            crate::format::VERSION,
            "no chained variables: container must stay v1"
        );
    }

    #[test]
    fn append_to_file_in_place_is_atomic() {
        let dir = std::env::temp_dir();
        let path = dir
            .join(format!("qoz_append_{}.qza", std::process::id()))
            .to_string_lossy()
            .into_owned();
        std::fs::write(&path, base_archive()).unwrap();

        let mut app = ArchiveAppender::open(&path).unwrap().with_chunk_side(4);
        app.add_variable(
            "vel",
            &field(5),
            &qoz_sz3::Sz3::default(),
            ErrorBound::Abs(1e-3),
        )
        .unwrap();
        let written = app.write_to(&path).unwrap();
        assert_eq!(
            written,
            std::fs::metadata(&path).unwrap().len(),
            "reported size must match the file"
        );

        let r = ArchiveReader::open(&path).unwrap();
        assert_eq!(r.toc().vars.len(), 2);
        let roi = Region::new(&[2, 2, 2], &[4, 4, 4]);
        let slab: NdArray<f32> = r.read_region("vel", &roi).unwrap();
        assert_eq!(slab.as_slice(), {
            let full: NdArray<f32> = r.read_full("vel").unwrap();
            full.extract_region(&roi).into_vec()
        });
        std::fs::remove_file(&path).ok();
    }
}
