//! `qoz_archive` — an indexed multi-variable container with random-access
//! and region-of-interest decompression.
//!
//! The paper's parallel dump/load scenario compresses huge snapshots
//! once and reads them many times; a monolithic stream forces every
//! consumer to decompress a whole field to look at one slab. This crate
//! defines the QZAR container: a superblock, a per-variable table of
//! contents, and a block index mapping a `Region::tile` chunk grid to
//! `(offset, len, checksum)` entries, with every chunk stored as an
//! *independent* `qoz_codec::stream` blob.
//!
//! * [`ArchiveWriter`] compresses chunks in parallel (through
//!   `qoz_pario`'s disjoint-slab workers) with any [`Compressor`](qoz_codec::Compressor)
//!   backend and emits the container;
//! * [`ArchiveReader`] answers `read_region` queries by fetching and
//!   decompressing only the chunks that intersect the request, stitches
//!   them into the requested slab, and verifies every chunk checksum on
//!   read. Every read method takes `&self`, so one open reader serves
//!   concurrent queries from many threads (pair with
//!   [`ArchiveReader::read_region_with`] to give each thread its own
//!   scratch arena);
//! * [`ArchiveAppender`] grows an existing archive in place: new
//!   variables — or new timesteps via the [`snapshot_name`]
//!   multi-snapshot convention — land behind the existing payload,
//!   which is kept byte-for-byte while only the superblock and TOC are
//!   rewritten (atomically, via temp file + rename);
//! * [`ByteSource`] abstracts the byte store (file or in-memory) and
//!   counts bytes fetched, making the I/O saving of partial reads
//!   observable.
//!
//! ```
//! use qoz_api::{BackendId, BackendRegistry};
//! use qoz_archive::{ArchiveReader, ArchiveWriter};
//! use qoz_codec::stream::ErrorBound;
//! use qoz_tensor::{NdArray, Region, Shape};
//!
//! let data = NdArray::from_fn(Shape::d3(20, 20, 20), |i| {
//!     (i[0] as f32 * 0.2).sin() + (i[1] as f32 * 0.1).cos() + i[2] as f32 * 0.01
//! });
//! let codec = BackendRegistry::new().codec::<f32>(BackendId::Sz3);
//! let mut w = ArchiveWriter::new().with_chunk_side(8);
//! w.add_variable("t", &data, &*codec, ErrorBound::Abs(1e-3))
//!     .unwrap();
//! let bytes = w.finish();
//!
//! let r = ArchiveReader::from_bytes(&bytes).unwrap();
//! let roi = Region::new(&[5, 5, 5], &[6, 6, 6]);
//! let slab: NdArray<f32> = r.read_region("t", &roi).unwrap();
//! assert_eq!(slab.shape().dims(), &[6, 6, 6]);
//! assert!(slab.max_abs_diff(&data.extract_region(&roi)) <= 2e-3);
//! // Far fewer bytes touched than the whole archive holds.
//! assert!(r.bytes_read() < bytes.len() as u64);
//! ```

pub mod appender;
pub mod format;
pub mod reader;
pub mod source;
pub mod writer;

pub use appender::ArchiveAppender;
pub use format::{
    fnv1a, parse_snapshot_name, snapshot_name, ChunkEntry, TemporalKind, Toc, VarMeta, MAGIC,
    VERSION, VERSION_TEMPORAL,
};
pub use reader::{ArchiveReader, ChunkFault, FaultKind, VerifyReport};
pub use source::{ByteSource, FileSource, SliceSource};
pub use writer::ArchiveWriter;

use qoz_codec::CodecError;

/// Errors produced while building or reading archives.
#[derive(Debug, Clone, PartialEq)]
pub enum ArchiveError {
    /// Underlying file I/O failed.
    Io(String),
    /// A read extended past the end of the archive.
    Truncated,
    /// The superblock magic is wrong — not a QZAR archive.
    BadMagic,
    /// The container was written by a newer format version.
    NewerFormat {
        /// Version found in the superblock.
        found: u8,
        /// Highest version this build reads.
        supported: u8,
    },
    /// A structural invariant of the TOC or index is violated.
    Corrupt(&'static str),
    /// A chunk's stored checksum does not match its bytes.
    ChecksumMismatch {
        /// Variable the chunk belongs to.
        var: String,
        /// Chunk index within the variable's grid.
        chunk: usize,
    },
    /// The requested variable does not exist.
    UnknownVariable(String),
    /// A variable was added twice under the same name.
    DuplicateVariable(String),
    /// The stored scalar type does not match the requested one.
    TypeMismatch {
        /// Tag recorded in the archive.
        stored: u8,
        /// Tag of the requested element type.
        requested: u8,
    },
    /// The query region does not fit inside the variable's shape.
    RegionOutOfBounds,
    /// A chunk stream failed to decode.
    Codec(CodecError),
}

impl ArchiveError {
    /// `true` when the failure means "written by a newer release" —
    /// either the container superblock or an embedded chunk stream —
    /// rather than corruption.
    pub fn is_newer_format(&self) -> bool {
        match self {
            ArchiveError::NewerFormat { found, supported } => found > supported,
            ArchiveError::Codec(e) => e.is_newer_format(),
            _ => false,
        }
    }
}

impl std::fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveError::Io(msg) => write!(f, "archive I/O error: {msg}"),
            ArchiveError::Truncated => write!(f, "archive is truncated"),
            ArchiveError::BadMagic => write!(f, "not a QZAR archive (bad magic)"),
            ArchiveError::NewerFormat { found, supported } => write!(
                f,
                "archive format version {found} is newer than supported ({supported}); upgrade to read it"
            ),
            ArchiveError::Corrupt(what) => write!(f, "corrupt archive: {what}"),
            ArchiveError::ChecksumMismatch { var, chunk } => {
                write!(f, "checksum mismatch in variable '{var}', chunk {chunk}")
            }
            ArchiveError::UnknownVariable(name) => write!(f, "no variable named '{name}'"),
            ArchiveError::DuplicateVariable(name) => {
                write!(f, "variable '{name}' already exists in the archive")
            }
            ArchiveError::TypeMismatch { stored, requested } => write!(
                f,
                "scalar type mismatch: archive stores tag {stored:#x}, caller requested {requested:#x}"
            ),
            ArchiveError::RegionOutOfBounds => {
                write!(f, "query region exceeds the variable's shape")
            }
            ArchiveError::Codec(e) => write!(f, "chunk stream error: {e}"),
        }
    }
}

impl std::error::Error for ArchiveError {}

impl From<CodecError> for ArchiveError {
    fn from(e: CodecError) -> Self {
        ArchiveError::Codec(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, ArchiveError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newer_format_detection_spans_container_and_chunks() {
        let container = ArchiveError::NewerFormat {
            found: 2,
            supported: 1,
        };
        assert!(container.is_newer_format());
        let chunk = ArchiveError::Codec(CodecError::BadVersion {
            found: 9,
            supported: 1,
        });
        assert!(chunk.is_newer_format());
        assert!(!ArchiveError::Truncated.is_newer_format());
        assert!(!ArchiveError::Corrupt("x").is_newer_format());
    }

    #[test]
    fn errors_display_distinctly() {
        let msgs = [
            ArchiveError::BadMagic.to_string(),
            ArchiveError::Truncated.to_string(),
            ArchiveError::NewerFormat {
                found: 3,
                supported: 1,
            }
            .to_string(),
            ArchiveError::ChecksumMismatch {
                var: "v".into(),
                chunk: 7,
            }
            .to_string(),
        ];
        for (i, a) in msgs.iter().enumerate() {
            for b in &msgs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
