//! Building QZAR archives.

use crate::format::{fnv1a, ChunkEntry, TemporalKind, Toc, VarMeta, MAGIC};
use crate::{ArchiveError, Result};
use qoz_codec::stream::{Compressor, ErrorBound};
use qoz_codec::ByteWriter;
use qoz_tensor::{NdArray, Scalar};

/// Default chunk grid side (elements). 32³ f32 chunks are 128 KiB raw —
/// small enough that a region query touches little excess data, large
/// enough that per-chunk stream overhead stays negligible.
pub const DEFAULT_CHUNK_SIDE: usize = 32;

/// Builds an archive: add variables one at a time, then [`finish`].
///
/// Each variable is split into a `Region::tile` chunk grid; chunks are
/// compressed *independently* (so readers can fetch any subset) and in
/// parallel via `qoz_pario`'s disjoint-slab workers. A relative error
/// bound is resolved against the **whole** variable once, so every
/// chunk honors the same absolute bound the monolithic stream would —
/// chunking never changes the error contract.
///
/// [`finish`]: ArchiveWriter::finish
#[derive(Debug)]
pub struct ArchiveWriter {
    chunk_side: usize,
    threads: usize,
    toc: Toc,
    payload: Vec<u8>,
}

impl Default for ArchiveWriter {
    fn default() -> Self {
        ArchiveWriter {
            chunk_side: DEFAULT_CHUNK_SIDE,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            toc: Toc::default(),
            payload: Vec::new(),
        }
    }
}

impl ArchiveWriter {
    /// Create a writer with the default chunk side and thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the chunk grid side (elements per dimension).
    ///
    /// # Panics
    /// Panics if `side` is 0.
    pub fn with_chunk_side(mut self, side: usize) -> Self {
        assert!(side > 0, "chunk side must be positive");
        self.chunk_side = side;
        self
    }

    /// Override the number of compression worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Variables added so far.
    pub fn toc(&self) -> &Toc {
        &self.toc
    }

    /// The staged payload (chunk blobs, back to back) — the appender
    /// splices this behind an existing archive's payload.
    pub(crate) fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Compress `data` under `bound` with `compressor` and add it as a
    /// variable named `name`.
    pub fn add_variable<T, C>(
        &mut self,
        name: &str,
        data: &NdArray<T>,
        compressor: &C,
        bound: ErrorBound,
    ) -> Result<()>
    where
        T: Scalar,
        C: Compressor<T> + Sync + ?Sized,
    {
        if name.is_empty() {
            return Err(ArchiveError::Corrupt("empty variable name"));
        }
        if self.toc.vars.iter().any(|v| v.name == name) {
            return Err(ArchiveError::DuplicateVariable(name.to_string()));
        }
        // Resolve a relative bound against the full variable so every
        // chunk gets the same absolute bound.
        let abs_eb = bound.absolute(data);
        let regions = qoz_tensor::Region::tile(data.shape(), self.chunk_side);
        let chunks: Vec<NdArray<T>> = regions.iter().map(|r| data.extract_region(r)).collect();
        // Chunk blobs stream straight into the payload in chunk order;
        // the returned lengths delimit them for the index.
        let mut offset = self.payload.len() as u64;
        let lens = qoz_pario::compress_chunks_into(
            compressor,
            &chunks,
            ErrorBound::Abs(abs_eb),
            self.threads,
            &mut self.payload,
        )?;
        let mut entries = Vec::with_capacity(lens.len());
        for len in lens {
            let blob = &self.payload[offset as usize..(offset + len) as usize];
            entries.push(ChunkEntry {
                offset,
                len,
                checksum: fnv1a(blob),
            });
            offset += len;
        }
        self.toc.vars.push(VarMeta {
            name: name.to_string(),
            scalar_tag: T::TYPE_TAG,
            shape: data.shape(),
            abs_eb,
            compressor: compressor.id(),
            chunk_side: self.chunk_side,
            chunks: entries,
            temporal: TemporalKind::Independent,
        });
        Ok(())
    }

    /// [`ArchiveWriter::add_variable`] with an explicit temporal-chain
    /// role — the appender's chained-snapshot path stages keyframes and
    /// residual (delta) variables through this. For deltas, `data` is
    /// the residual field and `bound` must already be the absolute bound
    /// resolved against the *snapshot* (never the residual's own range).
    pub(crate) fn add_variable_kind<T, C>(
        &mut self,
        name: &str,
        data: &NdArray<T>,
        compressor: &C,
        bound: ErrorBound,
        kind: TemporalKind,
    ) -> Result<()>
    where
        T: Scalar,
        C: Compressor<T> + Sync + ?Sized,
    {
        self.add_variable(name, data, compressor, bound)?;
        self.toc
            .vars
            .last_mut()
            .expect("add_variable just pushed")
            .temporal = kind;
        Ok(())
    }

    /// Serialize the archive into any byte sink — superblock, TOC +
    /// checksum, payload — without materializing one contiguous buffer.
    /// Returns the bytes written.
    pub fn write_into(&self, sink: &mut dyn std::io::Write) -> Result<u64> {
        self.write_into_with_toc(&self.toc.encode(), sink)
    }

    fn write_into_with_toc(&self, toc_bytes: &[u8], sink: &mut dyn std::io::Write) -> Result<u64> {
        let io_err = |e: std::io::Error| ArchiveError::Io(format!("archive sink: {e}"));
        let mut sb = ByteWriter::with_capacity(crate::format::SUPERBLOCK_LEN);
        sb.put_bytes(&MAGIC);
        sb.put_u8(self.toc.version());
        sb.put_u8(0); // flags, reserved
        sb.put_u64(toc_bytes.len() as u64);
        let sb = sb.finish();
        sink.write_all(&sb).map_err(io_err)?;
        sink.write_all(toc_bytes).map_err(io_err)?;
        sink.write_all(&fnv1a(toc_bytes).to_le_bytes())
            .map_err(io_err)?;
        sink.write_all(&self.payload).map_err(io_err)?;
        Ok((sb.len() + toc_bytes.len() + 8 + self.payload.len()) as u64)
    }

    /// Serialize the archive: superblock, TOC + checksum, payload.
    pub fn finish(self) -> Vec<u8> {
        let toc_bytes = self.toc.encode();
        let mut out = Vec::with_capacity(
            crate::format::SUPERBLOCK_LEN + toc_bytes.len() + 8 + self.payload.len(),
        );
        self.write_into_with_toc(&toc_bytes, &mut out)
            .expect("writing to a Vec cannot fail");
        out
    }

    /// Stream the archive to `path`; returns bytes written. Unlike
    /// [`ArchiveWriter::finish`] this never holds a second full copy of
    /// the archive in memory.
    pub fn write_to(self, path: &str) -> Result<u64> {
        let file = std::fs::File::create(path)
            .map_err(|e| ArchiveError::Io(format!("cannot write {path}: {e}")))?;
        let mut sink = std::io::BufWriter::new(file);
        let written = self.write_into(&mut sink)?;
        std::io::Write::flush(&mut sink)
            .map_err(|e| ArchiveError::Io(format!("cannot write {path}: {e}")))?;
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_tensor::Shape;

    fn field() -> NdArray<f32> {
        NdArray::from_fn(Shape::d3(12, 10, 8), |i| {
            (i[0] as f32 * 0.4).sin() * (i[1] as f32 * 0.25).cos() + i[2] as f32 * 0.02
        })
    }

    #[test]
    fn writer_records_grid_sized_index() {
        let data = field();
        let mut w = ArchiveWriter::new().with_chunk_side(4);
        w.add_variable("v", &data, &qoz_sz3::Sz3::default(), ErrorBound::Abs(1e-3))
            .unwrap();
        let var = &w.toc().vars[0];
        assert_eq!(var.chunks.len(), 3 * 3 * 2);
        assert_eq!(var.chunk_side, 4);
        assert_eq!(var.compressor, qoz_codec::CompressorId::Sz3);
        // Entries tile the payload contiguously.
        let mut expect_off = 0u64;
        for c in &var.chunks {
            assert_eq!(c.offset, expect_off);
            assert!(c.len > 0);
            expect_off += c.len;
        }
    }

    #[test]
    fn duplicate_variable_rejected() {
        let data = field();
        let mut w = ArchiveWriter::new();
        let c = qoz_sz3::Sz3::default();
        w.add_variable("v", &data, &c, ErrorBound::Abs(1e-3))
            .unwrap();
        assert_eq!(
            w.add_variable("v", &data, &c, ErrorBound::Abs(1e-3)),
            Err(ArchiveError::DuplicateVariable("v".into()))
        );
        assert!(w
            .add_variable("", &data, &c, ErrorBound::Abs(1e-3))
            .is_err());
    }

    #[test]
    fn thread_count_does_not_change_bytes() {
        let data = field();
        let c = qoz_sz3::Sz3::default();
        let mut a = ArchiveWriter::new().with_chunk_side(4).with_threads(1);
        a.add_variable("v", &data, &c, ErrorBound::Abs(1e-3))
            .unwrap();
        let mut b = ArchiveWriter::new().with_chunk_side(4).with_threads(7);
        b.add_variable("v", &data, &c, ErrorBound::Abs(1e-3))
            .unwrap();
        assert_eq!(a.finish(), b.finish(), "archives must be deterministic");
    }

    #[test]
    fn write_into_matches_finish_bytes() {
        let data = field();
        let c = qoz_sz3::Sz3::default();
        let mut a = ArchiveWriter::new().with_chunk_side(4);
        a.add_variable("v", &data, &c, ErrorBound::Abs(1e-3))
            .unwrap();
        let mut streamed = Vec::new();
        let written = a.write_into(&mut streamed).unwrap();
        assert_eq!(written, streamed.len() as u64);
        assert_eq!(streamed, a.finish(), "streaming must not change bytes");
    }

    #[test]
    fn relative_bound_resolved_against_full_variable() {
        // A chunk-local relative resolution would give chunk 1 (range
        // ~0.08) a far tighter bound than the global range (~8) implies;
        // recording abs_eb from the full variable is the contract.
        let data = NdArray::from_fn(Shape::d1(64), |i| {
            if i[0] < 32 {
                i[0] as f32 * 0.25
            } else {
                i[0] as f32 * 0.0025
            }
        });
        let mut w = ArchiveWriter::new().with_chunk_side(32);
        w.add_variable("v", &data, &qoz_sz3::Sz3::default(), ErrorBound::Rel(1e-2))
            .unwrap();
        let expect = ErrorBound::Rel(1e-2).absolute(&data);
        assert_eq!(w.toc().vars[0].abs_eb, expect);
    }
}
