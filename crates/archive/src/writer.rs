//! Building QZAR archives.

use crate::format::{fnv1a, ChunkEntry, Toc, VarMeta, MAGIC, VERSION};
use crate::{ArchiveError, Result};
use qoz_codec::stream::{Compressor, ErrorBound};
use qoz_codec::ByteWriter;
use qoz_tensor::{NdArray, Scalar};

/// Default chunk grid side (elements). 32³ f32 chunks are 128 KiB raw —
/// small enough that a region query touches little excess data, large
/// enough that per-chunk stream overhead stays negligible.
pub const DEFAULT_CHUNK_SIDE: usize = 32;

/// Builds an archive: add variables one at a time, then [`finish`].
///
/// Each variable is split into a `Region::tile` chunk grid; chunks are
/// compressed *independently* (so readers can fetch any subset) and in
/// parallel via `qoz_pario`'s disjoint-slab workers. A relative error
/// bound is resolved against the **whole** variable once, so every
/// chunk honors the same absolute bound the monolithic stream would —
/// chunking never changes the error contract.
///
/// [`finish`]: ArchiveWriter::finish
#[derive(Debug)]
pub struct ArchiveWriter {
    chunk_side: usize,
    threads: usize,
    toc: Toc,
    payload: Vec<u8>,
}

impl Default for ArchiveWriter {
    fn default() -> Self {
        ArchiveWriter {
            chunk_side: DEFAULT_CHUNK_SIDE,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            toc: Toc::default(),
            payload: Vec::new(),
        }
    }
}

impl ArchiveWriter {
    /// Create a writer with the default chunk side and thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the chunk grid side (elements per dimension).
    ///
    /// # Panics
    /// Panics if `side` is 0.
    pub fn with_chunk_side(mut self, side: usize) -> Self {
        assert!(side > 0, "chunk side must be positive");
        self.chunk_side = side;
        self
    }

    /// Override the number of compression worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Variables added so far.
    pub fn toc(&self) -> &Toc {
        &self.toc
    }

    /// Compress `data` under `bound` with `compressor` and add it as a
    /// variable named `name`.
    pub fn add_variable<T, C>(
        &mut self,
        name: &str,
        data: &NdArray<T>,
        compressor: &C,
        bound: ErrorBound,
    ) -> Result<()>
    where
        T: Scalar,
        C: Compressor<T> + Sync + ?Sized,
    {
        if name.is_empty() {
            return Err(ArchiveError::Corrupt("empty variable name"));
        }
        if self.toc.vars.iter().any(|v| v.name == name) {
            return Err(ArchiveError::DuplicateVariable(name.to_string()));
        }
        // Resolve a relative bound against the full variable so every
        // chunk gets the same absolute bound.
        let abs_eb = bound.absolute(data);
        let regions = qoz_tensor::Region::tile(data.shape(), self.chunk_side);
        let chunks: Vec<NdArray<T>> = regions.iter().map(|r| data.extract_region(r)).collect();
        let blobs =
            qoz_pario::compress_chunks(compressor, &chunks, ErrorBound::Abs(abs_eb), self.threads);
        let mut entries = Vec::with_capacity(blobs.len());
        for blob in &blobs {
            entries.push(ChunkEntry {
                offset: self.payload.len() as u64,
                len: blob.len() as u64,
                checksum: fnv1a(blob),
            });
            self.payload.extend_from_slice(blob);
        }
        self.toc.vars.push(VarMeta {
            name: name.to_string(),
            scalar_tag: T::TYPE_TAG,
            shape: data.shape(),
            abs_eb,
            compressor: compressor.id(),
            chunk_side: self.chunk_side,
            chunks: entries,
        });
        Ok(())
    }

    /// Serialize the archive: superblock, TOC + checksum, payload.
    pub fn finish(self) -> Vec<u8> {
        let toc_bytes = self.toc.encode();
        let mut w = ByteWriter::with_capacity(
            crate::format::SUPERBLOCK_LEN + toc_bytes.len() + 8 + self.payload.len(),
        );
        w.put_bytes(&MAGIC);
        w.put_u8(VERSION);
        w.put_u8(0); // flags, reserved
        w.put_u64(toc_bytes.len() as u64);
        w.put_bytes(&toc_bytes);
        w.put_u64(fnv1a(&toc_bytes));
        w.put_bytes(&self.payload);
        w.finish()
    }

    /// Serialize and write the archive to `path`; returns bytes written.
    pub fn write_to(self, path: &str) -> Result<u64> {
        let bytes = self.finish();
        std::fs::write(path, &bytes)
            .map_err(|e| ArchiveError::Io(format!("cannot write {path}: {e}")))?;
        Ok(bytes.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_tensor::Shape;

    fn field() -> NdArray<f32> {
        NdArray::from_fn(Shape::d3(12, 10, 8), |i| {
            (i[0] as f32 * 0.4).sin() * (i[1] as f32 * 0.25).cos() + i[2] as f32 * 0.02
        })
    }

    #[test]
    fn writer_records_grid_sized_index() {
        let data = field();
        let mut w = ArchiveWriter::new().with_chunk_side(4);
        w.add_variable("v", &data, &qoz_sz3::Sz3::default(), ErrorBound::Abs(1e-3))
            .unwrap();
        let var = &w.toc().vars[0];
        assert_eq!(var.chunks.len(), 3 * 3 * 2);
        assert_eq!(var.chunk_side, 4);
        assert_eq!(var.compressor, qoz_codec::CompressorId::Sz3);
        // Entries tile the payload contiguously.
        let mut expect_off = 0u64;
        for c in &var.chunks {
            assert_eq!(c.offset, expect_off);
            assert!(c.len > 0);
            expect_off += c.len;
        }
    }

    #[test]
    fn duplicate_variable_rejected() {
        let data = field();
        let mut w = ArchiveWriter::new();
        let c = qoz_sz3::Sz3::default();
        w.add_variable("v", &data, &c, ErrorBound::Abs(1e-3))
            .unwrap();
        assert_eq!(
            w.add_variable("v", &data, &c, ErrorBound::Abs(1e-3)),
            Err(ArchiveError::DuplicateVariable("v".into()))
        );
        assert!(w
            .add_variable("", &data, &c, ErrorBound::Abs(1e-3))
            .is_err());
    }

    #[test]
    fn thread_count_does_not_change_bytes() {
        let data = field();
        let c = qoz_sz3::Sz3::default();
        let mut a = ArchiveWriter::new().with_chunk_side(4).with_threads(1);
        a.add_variable("v", &data, &c, ErrorBound::Abs(1e-3))
            .unwrap();
        let mut b = ArchiveWriter::new().with_chunk_side(4).with_threads(7);
        b.add_variable("v", &data, &c, ErrorBound::Abs(1e-3))
            .unwrap();
        assert_eq!(a.finish(), b.finish(), "archives must be deterministic");
    }

    #[test]
    fn relative_bound_resolved_against_full_variable() {
        // A chunk-local relative resolution would give chunk 1 (range
        // ~0.08) a far tighter bound than the global range (~8) implies;
        // recording abs_eb from the full variable is the contract.
        let data = NdArray::from_fn(Shape::d1(64), |i| {
            if i[0] < 32 {
                i[0] as f32 * 0.25
            } else {
                i[0] as f32 * 0.0025
            }
        });
        let mut w = ArchiveWriter::new().with_chunk_side(32);
        w.add_variable("v", &data, &qoz_sz3::Sz3::default(), ErrorBound::Rel(1e-2))
            .unwrap();
        let expect = ErrorBound::Rel(1e-2).absolute(&data);
        assert_eq!(w.toc().vars[0].abs_eb, expect);
    }
}
