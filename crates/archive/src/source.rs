//! Random-access byte sources for archive reading.
//!
//! The reader never slurps a whole archive: it issues positioned reads
//! for the superblock, the TOC, and exactly the chunks a query touches.
//! Every implementation counts the bytes it actually fetched, which is
//! how the random-access tests and the `repro` bench axis measure the
//! I/O saving of region queries.
//!
//! Reads take `&self`: one open source serves any number of concurrent
//! readers without locking the data path (files use the OS's positioned
//! read, slices are naturally shared), so region queries from many
//! threads can share a single [`ArchiveReader`](crate::ArchiveReader)
//! handle. Byte accounting is atomic for the same reason.

use crate::{ArchiveError, Result};
use std::sync::atomic::{AtomicU64, Ordering};

/// A positioned, counted byte source.
///
/// Implementations must support concurrent positioned reads through a
/// shared reference; the byte counter is advisory (relaxed ordering)
/// and only counts successful reads.
pub trait ByteSource {
    /// Total length of the underlying archive in bytes.
    fn len(&self) -> u64;

    /// `true` when the source holds no bytes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read exactly `len` bytes starting at `offset`.
    ///
    /// Errors with [`ArchiveError::Truncated`] when the range extends
    /// past the end of the source.
    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>>;

    /// Total bytes fetched through [`ByteSource::read_at`] so far.
    fn bytes_read(&self) -> u64;
}

/// In-memory source over a byte slice (tests, network buffers).
#[derive(Debug)]
pub struct SliceSource<'a> {
    buf: &'a [u8],
    read: AtomicU64,
}

impl<'a> SliceSource<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        SliceSource {
            buf,
            read: AtomicU64::new(0),
        }
    }
}

impl ByteSource for SliceSource<'_> {
    fn len(&self) -> u64 {
        self.buf.len() as u64
    }

    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let end = offset
            .checked_add(len as u64)
            .ok_or(ArchiveError::Truncated)?;
        if end > self.buf.len() as u64 {
            return Err(ArchiveError::Truncated);
        }
        self.read.fetch_add(len as u64, Ordering::Relaxed);
        Ok(self.buf[offset as usize..end as usize].to_vec())
    }

    fn bytes_read(&self) -> u64 {
        self.read.load(Ordering::Relaxed)
    }
}

/// Positioned-read source over an open file.
///
/// On Unix every read is one `pread`-style call, so concurrent readers
/// never contend on a shared cursor; elsewhere a mutex serializes a
/// seek-and-read fallback (correct, just not parallel).
#[derive(Debug)]
pub struct FileSource {
    #[cfg(unix)]
    file: std::fs::File,
    #[cfg(not(unix))]
    file: std::sync::Mutex<std::fs::File>,
    len: u64,
    read: AtomicU64,
}

impl FileSource {
    /// Open a file for positioned reads.
    pub fn open(path: &str) -> Result<Self> {
        let file = std::fs::File::open(path)
            .map_err(|e| ArchiveError::Io(format!("cannot open {path}: {e}")))?;
        let len = file
            .metadata()
            .map_err(|e| ArchiveError::Io(format!("cannot stat {path}: {e}")))?
            .len();
        Ok(FileSource {
            #[cfg(unix)]
            file,
            #[cfg(not(unix))]
            file: std::sync::Mutex::new(file),
            len,
            read: AtomicU64::new(0),
        })
    }

    #[cfg(unix)]
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.file
            .read_exact_at(buf, offset)
            .map_err(|e| ArchiveError::Io(format!("read failed: {e}")))
    }

    #[cfg(not(unix))]
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = self.file.lock().expect("file source lock poisoned");
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| ArchiveError::Io(format!("seek failed: {e}")))?;
        file.read_exact(buf)
            .map_err(|e| ArchiveError::Io(format!("read failed: {e}")))
    }
}

impl ByteSource for FileSource {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let end = offset
            .checked_add(len as u64)
            .ok_or(ArchiveError::Truncated)?;
        if end > self.len {
            return Err(ArchiveError::Truncated);
        }
        let mut buf = vec![0u8; len];
        self.read_exact_at(&mut buf, offset)?;
        self.read.fetch_add(len as u64, Ordering::Relaxed);
        Ok(buf)
    }

    fn bytes_read(&self) -> u64 {
        self.read.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_source_reads_and_counts() {
        let data: Vec<u8> = (0..=99).collect();
        let s = SliceSource::new(&data);
        assert_eq!(s.len(), 100);
        assert_eq!(s.read_at(10, 5).unwrap(), &[10, 11, 12, 13, 14]);
        assert_eq!(s.bytes_read(), 5);
        assert_eq!(s.read_at(99, 1).unwrap(), &[99]);
        assert_eq!(s.bytes_read(), 6);
        assert!(matches!(s.read_at(99, 2), Err(ArchiveError::Truncated)));
        assert!(matches!(
            s.read_at(u64::MAX, 2),
            Err(ArchiveError::Truncated)
        ));
        // Failed reads are not counted.
        assert_eq!(s.bytes_read(), 6);
    }

    #[test]
    fn file_source_reads_and_counts() {
        let path = std::env::temp_dir()
            .join(format!("qoz_archive_src_{}", std::process::id()))
            .to_string_lossy()
            .into_owned();
        std::fs::write(&path, [5u8, 6, 7, 8]).unwrap();
        let s = FileSource::open(&path).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.read_at(1, 2).unwrap(), &[6, 7]);
        assert_eq!(s.bytes_read(), 2);
        assert!(s.read_at(3, 2).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(FileSource::open("/nonexistent/qoz.qza").is_err());
    }

    #[test]
    fn concurrent_positioned_reads_agree() {
        let data: Vec<u8> = (0u32..4096).map(|i| (i % 251) as u8).collect();
        let src = SliceSource::new(&data);
        std::thread::scope(|s| {
            for t in 0..4 {
                let src = &src;
                let data = &data;
                s.spawn(move || {
                    for k in 0..64 {
                        let off = (t * 64 + k) * 16 % (data.len() - 16);
                        let got = src.read_at(off as u64, 16).unwrap();
                        assert_eq!(got, &data[off..off + 16]);
                    }
                });
            }
        });
        assert_eq!(src.bytes_read(), 4 * 64 * 16);
    }
}
