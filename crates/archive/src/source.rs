//! Random-access byte sources for archive reading.
//!
//! The reader never slurps a whole archive: it issues positioned reads
//! for the superblock, the TOC, and exactly the chunks a query touches.
//! Every implementation counts the bytes it actually fetched, which is
//! how the random-access tests and the `repro` bench axis measure the
//! I/O saving of region queries.

use crate::{ArchiveError, Result};
use std::io::{Read, Seek, SeekFrom};

/// A positioned, counted byte source.
pub trait ByteSource {
    /// Total length of the underlying archive in bytes.
    fn len(&self) -> u64;

    /// `true` when the source holds no bytes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read exactly `len` bytes starting at `offset`.
    ///
    /// Errors with [`ArchiveError::Truncated`] when the range extends
    /// past the end of the source.
    fn read_at(&mut self, offset: u64, len: usize) -> Result<Vec<u8>>;

    /// Total bytes fetched through [`ByteSource::read_at`] so far.
    fn bytes_read(&self) -> u64;
}

/// In-memory source over a byte slice (tests, network buffers).
#[derive(Debug)]
pub struct SliceSource<'a> {
    buf: &'a [u8],
    read: u64,
}

impl<'a> SliceSource<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        SliceSource { buf, read: 0 }
    }
}

impl ByteSource for SliceSource<'_> {
    fn len(&self) -> u64 {
        self.buf.len() as u64
    }

    fn read_at(&mut self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let end = offset
            .checked_add(len as u64)
            .ok_or(ArchiveError::Truncated)?;
        if end > self.buf.len() as u64 {
            return Err(ArchiveError::Truncated);
        }
        self.read += len as u64;
        Ok(self.buf[offset as usize..end as usize].to_vec())
    }

    fn bytes_read(&self) -> u64 {
        self.read
    }
}

/// Seek-and-read source over an open file.
#[derive(Debug)]
pub struct FileSource {
    file: std::fs::File,
    len: u64,
    read: u64,
}

impl FileSource {
    /// Open a file for positioned reads.
    pub fn open(path: &str) -> Result<Self> {
        let file = std::fs::File::open(path)
            .map_err(|e| ArchiveError::Io(format!("cannot open {path}: {e}")))?;
        let len = file
            .metadata()
            .map_err(|e| ArchiveError::Io(format!("cannot stat {path}: {e}")))?
            .len();
        Ok(FileSource { file, len, read: 0 })
    }
}

impl ByteSource for FileSource {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_at(&mut self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let end = offset
            .checked_add(len as u64)
            .ok_or(ArchiveError::Truncated)?;
        if end > self.len {
            return Err(ArchiveError::Truncated);
        }
        self.file
            .seek(SeekFrom::Start(offset))
            .map_err(|e| ArchiveError::Io(format!("seek failed: {e}")))?;
        let mut buf = vec![0u8; len];
        self.file
            .read_exact(&mut buf)
            .map_err(|e| ArchiveError::Io(format!("read failed: {e}")))?;
        self.read += len as u64;
        Ok(buf)
    }

    fn bytes_read(&self) -> u64 {
        self.read
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_source_reads_and_counts() {
        let data: Vec<u8> = (0..=99).collect();
        let mut s = SliceSource::new(&data);
        assert_eq!(s.len(), 100);
        assert_eq!(s.read_at(10, 5).unwrap(), &[10, 11, 12, 13, 14]);
        assert_eq!(s.bytes_read(), 5);
        assert_eq!(s.read_at(99, 1).unwrap(), &[99]);
        assert_eq!(s.bytes_read(), 6);
        assert!(matches!(s.read_at(99, 2), Err(ArchiveError::Truncated)));
        assert!(matches!(
            s.read_at(u64::MAX, 2),
            Err(ArchiveError::Truncated)
        ));
        // Failed reads are not counted.
        assert_eq!(s.bytes_read(), 6);
    }

    #[test]
    fn file_source_reads_and_counts() {
        let path = std::env::temp_dir()
            .join(format!("qoz_archive_src_{}", std::process::id()))
            .to_string_lossy()
            .into_owned();
        std::fs::write(&path, [5u8, 6, 7, 8]).unwrap();
        let mut s = FileSource::open(&path).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.read_at(1, 2).unwrap(), &[6, 7]);
        assert_eq!(s.bytes_read(), 2);
        assert!(s.read_at(3, 2).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(FileSource::open("/nonexistent/qoz.qza").is_err());
    }
}
