//! Process-wide observability primitives for the qoz stack.
//!
//! Everything here is built on `std` atomics — no external deps, so any
//! crate in the workspace (including the lowest layers) can record into
//! it without creating a dependency cycle. The design splits into three
//! pieces:
//!
//! * **Instruments** — [`Counter`], [`Gauge`], and fixed-bucket
//!   [`Histogram`]s. All values are `u64` (latencies in nanoseconds,
//!   sizes in bytes) so snapshots serialize as varints and the text
//!   exposition round-trips exactly — no floats, no rounding drift.
//! * **Registries** — a [`Registry`] maps `(name, labels)` to shared
//!   instrument handles. Registration takes a lock; the hot path holds
//!   an `Arc` and only touches atomics. [`global()`] is the process-wide
//!   default (stage timers, archive counters, client retries); servers
//!   that need per-instance counters own their own `Registry`.
//! * **Stage spans** — [`StageTimer`]/[`StageSpan`] time the fixed
//!   compression stages (tune, predict+quantize, encode, entropy) with
//!   two relaxed atomic adds per span. A runtime kill switch
//!   ([`set_enabled`]) turns `start()` into a single relaxed load, and
//!   the `off` cargo feature compiles the span body out entirely, so the
//!   warm hot loop can be made to pay nothing.
//!
//! A [`Snapshot`] is a point-in-time copy of a registry. It has a
//! varint wire encoding (carried inside the daemon's extended `Stats`
//! response) and a Prometheus-style text exposition
//! ([`Snapshot::render_text`] / [`Snapshot::parse_text`]) with stable
//! ordering, label escaping, and cumulative histogram buckets.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways (queue depth, resident workers).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n` (saturating at zero is the caller's job; wrapping is
    /// fine for a metric that is read advisorily).
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations.
///
/// `bounds` are strictly increasing upper bounds; an observation lands
/// in the first bucket whose bound is `>=` the value, or in the implicit
/// overflow (`+Inf`) bucket past the last bound. Buckets store *raw*
/// (non-cumulative) counts; the text exposition renders them cumulative
/// per the Prometheus convention.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>, // bounds.len() + 1 (last = overflow / +Inf)
    sum: AtomicU64,
    count: AtomicU64,
}

/// Default latency bounds in nanoseconds: 100µs … 10s, decades.
pub const LATENCY_BOUNDS_NS: &[u64] = &[
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Default payload-size bounds in bytes: 1 KiB … 256 MiB.
pub const SIZE_BOUNDS_BYTES: &[u64] = &[1 << 10, 64 << 10, 1 << 20, 16 << 20, 256 << 20];

impl Histogram {
    /// A histogram with the given strictly increasing upper bounds.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations so far.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum(),
            count: self.count(),
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// `(name, sorted labels)` — the identity of one time series.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric family name (`qoz_requests_total`).
    pub name: String,
    /// Label pairs, kept sorted so equal label sets compare equal.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key; labels are sorted for a canonical identity.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<MetricKey, Arc<Counter>>,
    gauges: BTreeMap<MetricKey, Arc<Gauge>>,
    histograms: BTreeMap<MetricKey, Arc<Histogram>>,
}

/// A set of named instruments. Cheap to snapshot, safe to share.
///
/// Lookup-or-register takes a mutex; do it once at setup and keep the
/// returned `Arc` for the hot path.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("registry lock poisoned");
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter for `(name, labels)`, registering it on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        Arc::clone(inner.counters.entry(key).or_default())
    }

    /// The gauge for `(name, labels)`, registering it on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        Arc::clone(inner.gauges.entry(key).or_default())
    }

    /// The histogram for `(name, labels)`, registering it with `bounds`
    /// on first use (later calls keep the original bounds).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Arc<Histogram> {
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        Arc::clone(
            inner
                .histograms
                .entry(key)
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// A point-in-time copy of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("registry lock poisoned");
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// The process-wide default registry. Layer-level metrics (archive I/O,
/// client retries, worker replacements) record here; daemons merge it
/// into their exposition alongside their per-instance registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

// ---------------------------------------------------------------------------
// Stage spans
// ---------------------------------------------------------------------------

static SPANS_ENABLED: AtomicBool = AtomicBool::new(true);

/// Runtime kill switch for stage spans. When off, [`StageTimer::start`]
/// is a single relaxed load and records nothing.
pub fn set_enabled(on: bool) {
    SPANS_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether stage spans currently record.
pub fn enabled() -> bool {
    SPANS_ENABLED.load(Ordering::Relaxed)
}

/// Observer of completed spans, for routing timings somewhere else
/// (a test collector, an external tracer). At most one per process;
/// the built-in accumulation into [`StageTimer`] always happens.
pub trait Subscriber: Send + Sync {
    /// Called once per completed span with its stage name and duration.
    fn on_span(&self, stage: &'static str, dur_ns: u64);
}

static SUBSCRIBER: OnceLock<Box<dyn Subscriber>> = OnceLock::new();

/// Install the process-wide span subscriber. First caller wins; returns
/// whether this call installed it.
pub fn set_subscriber(sub: Box<dyn Subscriber>) -> bool {
    SUBSCRIBER.set(sub).is_ok()
}

/// Accumulated wall time and call count for one named pipeline stage.
#[derive(Debug)]
pub struct StageTimer {
    name: &'static str,
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl StageTimer {
    /// A zeroed timer for `name`.
    pub const fn new(name: &'static str) -> Self {
        StageTimer {
            name,
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// The stage name this timer accumulates.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Begin a span; the elapsed time records when the guard drops.
    /// With the `off` feature this compiles to nothing.
    #[inline]
    pub fn start(&self) -> StageSpan<'_> {
        #[cfg(feature = "off")]
        {
            StageSpan {
                _marker: std::marker::PhantomData,
            }
        }
        #[cfg(not(feature = "off"))]
        {
            StageSpan {
                live: if enabled() {
                    Some((self, Instant::now()))
                } else {
                    None
                },
            }
        }
    }

    /// Record a span measured externally.
    pub fn record_ns(&self, ns: u64) {
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if let Some(sub) = SUBSCRIBER.get() {
            sub.on_span(self.name, ns);
        }
    }

    /// Total nanoseconds accumulated.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Spans recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Zero the accumulator (bench harnesses measuring deltas).
    pub fn reset(&self) {
        self.sum_ns.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

/// Drop guard returned by [`StageTimer::start`].
#[must_use = "a span records when dropped; binding to _ drops immediately"]
pub struct StageSpan<'a> {
    #[cfg(feature = "off")]
    _marker: std::marker::PhantomData<&'a ()>,
    #[cfg(not(feature = "off"))]
    live: Option<(&'a StageTimer, Instant)>,
}

impl Drop for StageSpan<'_> {
    #[inline]
    fn drop(&mut self) {
        #[cfg(not(feature = "off"))]
        if let Some((timer, start)) = self.live.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            timer.record_ns(ns);
        }
    }
}

/// The fixed compression-stage timers, in pipeline order.
///
/// `predict_quantize` is one timer because SZ3-style compression fuses
/// prediction and quantization into a single data pass — there is no
/// boundary to time separately without slowing the pass down.
#[derive(Debug)]
pub struct Stages {
    /// Plan construction: sampling, parameter sweep, spec selection.
    pub tune: StageTimer,
    /// The fused predict+quantize sweep over the data.
    pub predict_quantize: StageTimer,
    /// Huffman encoding of the quantizer bins.
    pub encode: StageTimer,
    /// Lossless (LZSS) compression of unpredictables and anchors.
    pub entropy: StageTimer,
}

static STAGES: Stages = Stages {
    tune: StageTimer::new("tune"),
    predict_quantize: StageTimer::new("predict_quantize"),
    encode: StageTimer::new("encode"),
    entropy: StageTimer::new("entropy"),
};

/// The process-wide stage timers.
pub fn stages() -> &'static Stages {
    &STAGES
}

impl Stages {
    /// All four timers, pipeline order.
    pub fn all(&self) -> [&StageTimer; 4] {
        [
            &self.tune,
            &self.predict_quantize,
            &self.encode,
            &self.entropy,
        ]
    }

    /// Zero every timer.
    pub fn reset(&self) {
        for t in self.all() {
            t.reset();
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot: wire encoding + text exposition
// ---------------------------------------------------------------------------

/// A point-in-time copy of a [`Registry`] (plus, optionally, the stage
/// timers appended as counters). Orderable, serializable, diffable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values, sorted by key.
    pub counters: Vec<(MetricKey, u64)>,
    /// Gauge values, sorted by key.
    pub gauges: Vec<(MetricKey, u64)>,
    /// Histogram states, sorted by key.
    pub histograms: Vec<(MetricKey, HistogramSnapshot)>,
}

/// Frozen histogram state: raw (non-cumulative) bucket counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Upper bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// Raw per-bucket counts; `bounds.len() + 1` entries (last = +Inf).
    pub buckets: Vec<u64>,
    /// Sum of observations.
    pub sum: u64,
    /// Count of observations.
    pub count: u64,
}

/// Why a snapshot failed to decode or parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(pub String);

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "telemetry snapshot: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

fn err(msg: &str) -> SnapshotError {
    SnapshotError(msg.to_string())
}

const WIRE_VERSION: u8 = 1;
/// Hard cap on decoded collection sizes — a lied-about length must not
/// translate into a proportional allocation.
const MAX_SERIES: u64 = 1 << 20;
const MAX_STR: u64 = 4096;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(data: &[u8], pos: &mut usize) -> Result<u64, SnapshotError> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        let byte = *data.get(*pos).ok_or_else(|| err("truncated varint"))?;
        *pos += 1;
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(err("varint too long"))
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(data: &[u8], pos: &mut usize) -> Result<String, SnapshotError> {
    let len = get_varint(data, pos)?;
    if len > MAX_STR {
        return Err(err("string too long"));
    }
    let len = len as usize;
    let end = pos.checked_add(len).ok_or_else(|| err("length overflow"))?;
    let bytes = data.get(*pos..end).ok_or_else(|| err("truncated string"))?;
    *pos = end;
    String::from_utf8(bytes.to_vec()).map_err(|_| err("string not utf-8"))
}

fn put_key(out: &mut Vec<u8>, key: &MetricKey) {
    put_str(out, &key.name);
    put_varint(out, key.labels.len() as u64);
    for (k, v) in &key.labels {
        put_str(out, k);
        put_str(out, v);
    }
}

fn get_key(data: &[u8], pos: &mut usize) -> Result<MetricKey, SnapshotError> {
    let name = get_str(data, pos)?;
    let n = get_varint(data, pos)?;
    if n > 64 {
        return Err(err("too many labels"));
    }
    let mut labels = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let k = get_str(data, pos)?;
        let v = get_str(data, pos)?;
        labels.push((k, v));
    }
    Ok(MetricKey { name, labels })
}

impl Snapshot {
    /// Serialize for the wire (the daemon's extended `Stats` payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.push(WIRE_VERSION);
        put_varint(&mut out, self.counters.len() as u64);
        for (key, v) in &self.counters {
            put_key(&mut out, key);
            put_varint(&mut out, *v);
        }
        put_varint(&mut out, self.gauges.len() as u64);
        for (key, v) in &self.gauges {
            put_key(&mut out, key);
            put_varint(&mut out, *v);
        }
        put_varint(&mut out, self.histograms.len() as u64);
        for (key, h) in &self.histograms {
            put_key(&mut out, key);
            put_varint(&mut out, h.bounds.len() as u64);
            for b in &h.bounds {
                put_varint(&mut out, *b);
            }
            for b in &h.buckets {
                put_varint(&mut out, *b);
            }
            put_varint(&mut out, h.sum);
            put_varint(&mut out, h.count);
        }
        out
    }

    /// Decode a blob produced by [`Snapshot::encode`]. Rejects unknown
    /// versions and trailing bytes.
    pub fn decode(data: &[u8]) -> Result<Snapshot, SnapshotError> {
        let mut pos = 0usize;
        let version = *data.get(pos).ok_or_else(|| err("empty blob"))?;
        pos += 1;
        if version != WIRE_VERSION {
            return Err(err("unknown snapshot version"));
        }
        let mut snap = Snapshot::default();
        let n = get_varint(data, &mut pos)?;
        if n > MAX_SERIES {
            return Err(err("too many counters"));
        }
        for _ in 0..n {
            let key = get_key(data, &mut pos)?;
            let v = get_varint(data, &mut pos)?;
            snap.counters.push((key, v));
        }
        let n = get_varint(data, &mut pos)?;
        if n > MAX_SERIES {
            return Err(err("too many gauges"));
        }
        for _ in 0..n {
            let key = get_key(data, &mut pos)?;
            let v = get_varint(data, &mut pos)?;
            snap.gauges.push((key, v));
        }
        let n = get_varint(data, &mut pos)?;
        if n > MAX_SERIES {
            return Err(err("too many histograms"));
        }
        for _ in 0..n {
            let key = get_key(data, &mut pos)?;
            let nb = get_varint(data, &mut pos)?;
            if nb > 256 {
                return Err(err("too many buckets"));
            }
            let mut bounds = Vec::with_capacity(nb as usize);
            for _ in 0..nb {
                bounds.push(get_varint(data, &mut pos)?);
            }
            let mut buckets = Vec::with_capacity(nb as usize + 1);
            for _ in 0..=nb {
                buckets.push(get_varint(data, &mut pos)?);
            }
            let sum = get_varint(data, &mut pos)?;
            let count = get_varint(data, &mut pos)?;
            snap.histograms.push((
                key,
                HistogramSnapshot {
                    bounds,
                    buckets,
                    sum,
                    count,
                },
            ));
        }
        if pos != data.len() {
            return Err(err("trailing bytes"));
        }
        Ok(snap)
    }

    /// Append another snapshot's series (a daemon merging [`global()`]
    /// into its per-instance registry). Re-sorts to keep rendering
    /// stable; duplicate keys are kept as-is (callers use disjoint
    /// metric names per registry).
    pub fn merge(&mut self, other: &Snapshot) {
        self.counters.extend(other.counters.iter().cloned());
        self.gauges.extend(other.gauges.iter().cloned());
        self.histograms.extend(other.histograms.iter().cloned());
        self.counters.sort();
        self.gauges.sort();
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Append the process-wide [`stages()`] timers as two counter
    /// families: `qoz_stage_ns_total{stage=...}` and
    /// `qoz_stage_ops_total{stage=...}`.
    pub fn append_stages(&mut self) {
        for t in stages().all() {
            self.counters.push((
                MetricKey::new("qoz_stage_ns_total", &[("stage", t.name())]),
                t.sum_ns(),
            ));
            self.counters.push((
                MetricKey::new("qoz_stage_ops_total", &[("stage", t.name())]),
                t.count(),
            ));
        }
        self.counters.sort();
    }

    /// Value of the counter `(name, labels)`, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = MetricKey::new(name, labels);
        self.counters
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
    }

    /// Sum of every counter series in the family `name`.
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// The histogram for `(name, labels)`, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        let key = MetricKey::new(name, labels);
        self.histograms
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, h)| h)
    }

    /// Render the Prometheus text exposition format.
    ///
    /// Ordering is deterministic: counters, then gauges, then
    /// histograms, each sorted by `(name, labels)`; one `# TYPE` line
    /// precedes each metric family. Label values escape `\`, `"`, and
    /// newline. Histogram buckets render cumulative with a final
    /// `le="+Inf"` bucket equal to `_count`.
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(1024);
        let mut last_family = String::new();
        let type_line = |out: &mut String, name: &str, kind: &str, last: &mut String| {
            if *last != name {
                out.push_str("# TYPE ");
                out.push_str(name);
                out.push(' ');
                out.push_str(kind);
                out.push('\n');
                *last = name.to_string();
            }
        };
        for (key, v) in &self.counters {
            type_line(&mut out, &key.name, "counter", &mut last_family);
            render_sample(&mut out, &key.name, &key.labels, None, *v);
        }
        for (key, v) in &self.gauges {
            type_line(&mut out, &key.name, "gauge", &mut last_family);
            render_sample(&mut out, &key.name, &key.labels, None, *v);
        }
        for (key, h) in &self.histograms {
            type_line(&mut out, &key.name, "histogram", &mut last_family);
            let bucket_name = format!("{}_bucket", key.name);
            let mut cum = 0u64;
            for (i, raw) in h.buckets.iter().enumerate() {
                cum += raw;
                let le = match h.bounds.get(i) {
                    Some(b) => b.to_string(),
                    None => "+Inf".to_string(),
                };
                render_sample(&mut out, &bucket_name, &key.labels, Some(&le), cum);
            }
            render_sample(
                &mut out,
                &format!("{}_sum", key.name),
                &key.labels,
                None,
                h.sum,
            );
            render_sample(
                &mut out,
                &format!("{}_count", key.name),
                &key.labels,
                None,
                h.count,
            );
        }
        out
    }

    /// Parse text produced by [`Snapshot::render_text`] back into a
    /// snapshot (cumulative buckets are differenced back to raw).
    pub fn parse_text(text: &str) -> Result<Snapshot, SnapshotError> {
        let mut types: BTreeMap<String, String> = BTreeMap::new();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        // (family, labels) -> accumulating histogram parts
        let mut hists: BTreeMap<MetricKey, HistParts> = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().ok_or_else(|| err("TYPE line missing name"))?;
                let kind = it.next().ok_or_else(|| err("TYPE line missing kind"))?;
                types.insert(name.to_string(), kind.to_string());
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let (name, labels, value) = parse_sample(line)?;
            // Histogram component names shadow their family's TYPE line.
            let hist_family = ["_bucket", "_sum", "_count"].iter().find_map(|suf| {
                let fam = name.strip_suffix(suf)?;
                (types.get(fam).map(String::as_str) == Some("histogram"))
                    .then(|| (fam.to_string(), *suf))
            });
            if let Some((family, suffix)) = hist_family {
                let mut labels = labels;
                let mut le = None;
                if suffix == "_bucket" {
                    let idx = labels
                        .iter()
                        .position(|(k, _)| k == "le")
                        .ok_or_else(|| err("bucket sample missing le"))?;
                    le = Some(labels.remove(idx).1);
                }
                labels.sort();
                let entry = hists
                    .entry(MetricKey {
                        name: family,
                        labels,
                    })
                    .or_default();
                match suffix {
                    "_bucket" => entry.buckets.push((le.expect("le extracted above"), value)),
                    "_sum" => entry.sum = value,
                    _ => entry.count = value,
                }
                continue;
            }
            let key = MetricKey {
                name: name.clone(),
                labels: {
                    let mut l = labels;
                    l.sort();
                    l
                },
            };
            match types.get(&name).map(String::as_str) {
                Some("counter") => counters.push((key, value)),
                Some("gauge") => gauges.push((key, value)),
                Some(other) => return Err(SnapshotError(format!("unknown type {other}"))),
                None => return Err(SnapshotError(format!("sample {name} before its TYPE"))),
            }
        }
        let mut histograms = Vec::new();
        for (key, parts) in hists {
            histograms.push((key, parts.finish()?));
        }
        counters.sort();
        gauges.sort();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(Snapshot {
            counters,
            gauges,
            histograms,
        })
    }
}

#[derive(Default)]
struct HistParts {
    buckets: Vec<(String, u64)>, // (le, cumulative)
    sum: u64,
    count: u64,
}

impl HistParts {
    fn finish(self) -> Result<HistogramSnapshot, SnapshotError> {
        let mut bounds = Vec::new();
        let mut raw = Vec::new();
        let mut prev = 0u64;
        let n = self.buckets.len();
        if n == 0 {
            return Err(err("histogram with no buckets"));
        }
        for (i, (le, cum)) in self.buckets.iter().enumerate() {
            if *cum < prev {
                return Err(err("histogram buckets not cumulative"));
            }
            raw.push(cum - prev);
            prev = *cum;
            if le == "+Inf" {
                if i + 1 != n {
                    return Err(err("+Inf bucket not last"));
                }
            } else {
                bounds.push(le.parse::<u64>().map_err(|_| err("non-integer le"))?);
            }
        }
        if bounds.len() + 1 != raw.len() {
            return Err(err("histogram missing +Inf bucket"));
        }
        if prev != self.count {
            return Err(err("histogram count disagrees with +Inf bucket"));
        }
        Ok(HistogramSnapshot {
            bounds,
            buckets: raw,
            sum: self.sum,
            count: self.count,
        })
    }
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn unescape_label(v: &str) -> Result<String, SnapshotError> {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            _ => return Err(err("bad escape in label value")),
        }
    }
    Ok(out)
}

fn render_sample(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    le: Option<&str>,
    value: u64,
) {
    out.push_str(name);
    let has_labels = !labels.is_empty() || le.is_some();
    if has_labels {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(v));
            out.push('"');
        }
        if let Some(le) = le {
            if !first {
                out.push(',');
            }
            out.push_str("le=\"");
            out.push_str(le);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Parse one sample line: `name{k="v",...} value` or `name value`.
#[allow(clippy::type_complexity)]
fn parse_sample(line: &str) -> Result<(String, Vec<(String, String)>, u64), SnapshotError> {
    let (head, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| err("sample line missing value"))?;
    let value = value
        .parse::<u64>()
        .map_err(|_| err("non-integer sample value"))?;
    if let Some(brace) = head.find('{') {
        let name = head[..brace].to_string();
        let body = head[brace + 1..]
            .strip_suffix('}')
            .ok_or_else(|| err("unterminated label set"))?;
        let mut labels = Vec::new();
        let mut rest = body;
        while !rest.is_empty() {
            let eq = rest.find("=\"").ok_or_else(|| err("label missing ="))?;
            let key = rest[..eq].to_string();
            rest = &rest[eq + 2..];
            // Find the closing quote, skipping escaped characters.
            let mut end = None;
            let mut idx = 0;
            let bytes = rest.as_bytes();
            while idx < bytes.len() {
                match bytes[idx] {
                    b'\\' => idx += 2,
                    b'"' => {
                        end = Some(idx);
                        break;
                    }
                    _ => idx += 1,
                }
            }
            let end = end.ok_or_else(|| err("unterminated label value"))?;
            labels.push((key, unescape_label(&rest[..end])?));
            rest = &rest[end + 1..];
            rest = rest.strip_prefix(',').unwrap_or(rest);
        }
        Ok((name, labels, value))
    } else {
        Ok((head.to_string(), Vec::new(), value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let reg = Registry::new();
        let c = reg.counter("hits", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same key returns the same instrument.
        assert_eq!(reg.counter("hits", &[]).get(), 5);

        let g = reg.gauge("depth", &[]);
        g.set(10);
        g.sub(3);
        g.add(1);
        assert_eq!(g.get(), 8);

        let h = reg.histogram("lat", &[], &[10, 100]);
        h.observe(5); // bucket 0
        h.observe(10); // bucket 0 (le is inclusive)
        h.observe(50); // bucket 1
        h.observe(1000); // overflow
        let snap = reg.snapshot();
        let hs = snap.histogram("lat", &[]).unwrap();
        assert_eq!(hs.buckets, vec![2, 1, 1]);
        assert_eq!(hs.count, 4);
        assert_eq!(hs.sum, 5 + 10 + 50 + 1000);
    }

    #[test]
    fn label_order_is_canonical() {
        let reg = Registry::new();
        reg.counter("c", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(reg.counter("c", &[("a", "1"), ("b", "2")]).get(), 1);
    }

    #[test]
    fn stage_timer_records_and_resets() {
        let t = StageTimer::new("test_stage");
        t.record_ns(100);
        {
            let _span = t.start();
        }
        #[cfg(not(feature = "off"))]
        {
            assert_eq!(t.count(), 2);
            assert!(t.sum_ns() >= 100);
        }
        t.reset();
        assert_eq!(t.count(), 0);
        assert_eq!(t.sum_ns(), 0);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let t = StageTimer::new("gated");
        set_enabled(false);
        {
            let _span = t.start();
        }
        set_enabled(true);
        assert_eq!(t.count(), 0);
    }

    fn populated_snapshot() -> Snapshot {
        let reg = Registry::new();
        reg.counter("qoz_requests_total", &[("kind", "compress")])
            .add(7);
        reg.counter("qoz_requests_total", &[("kind", "ping")])
            .add(2);
        reg.counter("qoz_errors_total", &[("code", "overloaded")])
            .add(3);
        reg.gauge("qoz_queue_depth", &[]).set(4);
        let h = reg.histogram(
            "qoz_request_latency_ns",
            &[("kind", "compress")],
            &[1000, 1_000_000],
        );
        h.observe(500);
        h.observe(500);
        h.observe(2000);
        h.observe(5_000_000);
        // A label value exercising every escape.
        reg.counter("qoz_odd", &[("path", "a\\b\"c\nd")]).add(1);
        reg.snapshot()
    }

    #[test]
    fn golden_text_rendering() {
        let text = populated_snapshot().render_text();
        let want = concat!(
            "# TYPE qoz_errors_total counter\n",
            "qoz_errors_total{code=\"overloaded\"} 3\n",
            "# TYPE qoz_odd counter\n",
            "qoz_odd{path=\"a\\\\b\\\"c\\nd\"} 1\n",
            "# TYPE qoz_requests_total counter\n",
            "qoz_requests_total{kind=\"compress\"} 7\n",
            "qoz_requests_total{kind=\"ping\"} 2\n",
            "# TYPE qoz_queue_depth gauge\n",
            "qoz_queue_depth 4\n",
            "# TYPE qoz_request_latency_ns histogram\n",
            "qoz_request_latency_ns_bucket{kind=\"compress\",le=\"1000\"} 2\n",
            "qoz_request_latency_ns_bucket{kind=\"compress\",le=\"1000000\"} 3\n",
            "qoz_request_latency_ns_bucket{kind=\"compress\",le=\"+Inf\"} 4\n",
            "qoz_request_latency_ns_sum{kind=\"compress\"} 5003000\n",
            "qoz_request_latency_ns_count{kind=\"compress\"} 4\n",
        );
        assert_eq!(text, want);
    }

    #[test]
    fn text_round_trips() {
        let snap = populated_snapshot();
        let parsed = Snapshot::parse_text(&snap.render_text()).expect("parses");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn wire_round_trips() {
        let snap = populated_snapshot();
        let decoded = Snapshot::decode(&snap.encode()).expect("decodes");
        assert_eq!(decoded, snap);
    }

    #[test]
    fn wire_rejects_damage() {
        let blob = populated_snapshot().encode();
        assert!(Snapshot::decode(&[]).is_err(), "empty");
        assert!(
            Snapshot::decode(&blob[..blob.len() - 1]).is_err(),
            "truncated"
        );
        let mut versioned = blob.clone();
        versioned[0] = 99;
        assert!(Snapshot::decode(&versioned).is_err(), "unknown version");
        let mut trailing = blob;
        trailing.push(0);
        assert!(Snapshot::decode(&trailing).is_err(), "trailing bytes");
    }

    #[test]
    fn parse_rejects_malformed_text() {
        assert!(Snapshot::parse_text("no_type_line 4\n").is_err());
        assert!(Snapshot::parse_text("# TYPE x counter\nx notanumber\n").is_err());
        // Non-cumulative buckets are rejected.
        let bad = concat!(
            "# TYPE h histogram\n",
            "h_bucket{le=\"10\"} 5\n",
            "h_bucket{le=\"+Inf\"} 3\n",
            "h_sum 1\n",
            "h_count 3\n",
        );
        assert!(Snapshot::parse_text(bad).is_err());
    }

    #[test]
    fn merge_and_lookup_helpers() {
        let a = Registry::new();
        a.counter("x_total", &[("k", "1")]).add(2);
        let b = Registry::new();
        b.counter("y_total", &[]).add(5);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counter("x_total", &[("k", "1")]), Some(2));
        assert_eq!(snap.counter("y_total", &[]), Some(5));
        assert_eq!(snap.counter_sum("x_total"), 2);
        assert_eq!(snap.counter("absent", &[]), None);
    }

    #[test]
    fn stages_append_into_snapshot() {
        // Stage timers are process-global; use record_ns so the values
        // are at least what we wrote even if other tests also record.
        stages().tune.record_ns(10);
        let mut snap = Snapshot::default();
        snap.append_stages();
        assert!(
            snap.counter("qoz_stage_ns_total", &[("stage", "tune")])
                .unwrap()
                >= 10
        );
        assert!(
            snap.counter("qoz_stage_ops_total", &[("stage", "tune")])
                .unwrap()
                >= 1
        );
        assert!(snap
            .counter("qoz_stage_ns_total", &[("stage", "predict_quantize")])
            .is_some());
    }
}
