//! The user-facing quality-metric selector and its comparison semantics.
//!
//! QoZ's tuner needs two things from a metric: a way to *evaluate* it on
//! (original, reconstruction) pairs, and an *orientation* — whether larger
//! or smaller values are better. Compression ratio is folded in as a
//! pseudo-metric whose evaluation is constant (the tuner then reduces to
//! pure bit-rate minimization), matching the paper's
//! "incline to minimize bit-rate" mode.

use crate::autocorr::error_autocorrelation;
use crate::error_stats::psnr;
use crate::ssim::ssim;
use qoz_tensor::{NdArray, Scalar};

/// The quality metric a compression run should optimize (paper Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QualityMetric {
    /// Maximize compression ratio (minimize bit-rate) — the paper's
    /// "maximizing compression ratio" tuning mode.
    #[default]
    CompressionRatio,
    /// Optimize rate-PSNR (Eq. 1). Higher is better.
    Psnr,
    /// Optimize rate-SSIM (Eq. 2–3). Higher is better.
    Ssim,
    /// Minimize |lag-1 autocorrelation| of errors (Eq. 4). Lower is better.
    AutoCorrelation,
}

impl QualityMetric {
    /// `true` when larger metric values are better.
    pub fn higher_is_better(self) -> bool {
        match self {
            QualityMetric::Psnr | QualityMetric::Ssim => true,
            // For AC we score `-|ac|` so "higher is better" internally;
            // CompressionRatio has a constant score.
            QualityMetric::AutoCorrelation => true,
            QualityMetric::CompressionRatio => true,
        }
    }

    /// Short display name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            QualityMetric::CompressionRatio => "CR",
            QualityMetric::Psnr => "PSNR",
            QualityMetric::Ssim => "SSIM",
            QualityMetric::AutoCorrelation => "AC",
        }
    }
}

/// Evaluate `metric` for a reconstruction, returned in an orientation
/// where **larger is always better** (AC is negated-absolute; CR returns
/// 0 so that only bit-rate drives its comparisons).
pub fn evaluate_metric<T: Scalar>(
    metric: QualityMetric,
    original: &NdArray<T>,
    recon: &NdArray<T>,
) -> f64 {
    match metric {
        QualityMetric::CompressionRatio => 0.0,
        QualityMetric::Psnr => psnr(original, recon),
        QualityMetric::Ssim => ssim(original, recon),
        QualityMetric::AutoCorrelation => -error_autocorrelation(original, recon, 1).abs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_tensor::Shape;

    fn noisy(a: &NdArray<f64>, amp: f64) -> NdArray<f64> {
        let mut b = a.clone();
        for (i, v) in b.as_mut_slice().iter_mut().enumerate() {
            *v += if i % 2 == 0 { amp } else { -amp };
        }
        b
    }

    #[test]
    fn psnr_orientation() {
        let a = NdArray::from_fn(Shape::d2(32, 32), |i| {
            (i[0] as f64 * 0.3).sin() + i[1] as f64 * 0.01
        });
        let good = noisy(&a, 1e-6);
        let bad = noisy(&a, 1e-2);
        assert!(
            evaluate_metric(QualityMetric::Psnr, &a, &good)
                > evaluate_metric(QualityMetric::Psnr, &a, &bad)
        );
    }

    #[test]
    fn ssim_orientation() {
        let a = NdArray::from_fn(Shape::d2(32, 32), |i| {
            (i[0] as f64 * 0.3).sin() + i[1] as f64 * 0.01
        });
        let good = noisy(&a, 1e-6);
        let bad = noisy(&a, 1e-1);
        assert!(
            evaluate_metric(QualityMetric::Ssim, &a, &good)
                > evaluate_metric(QualityMetric::Ssim, &a, &bad)
        );
    }

    #[test]
    fn ac_orientation_prefers_white_errors() {
        let a = NdArray::from_fn(Shape::d1(4000), |i| (i[0] as f64 * 0.05).sin());
        // Smooth error = bad; alternating error has |AC| ~ 1 too; use a
        // pseudo-random error for the "good" case.
        let mut smooth = a.clone();
        for (i, v) in smooth.as_mut_slice().iter_mut().enumerate() {
            *v += 0.01 * (i as f64 * 0.02).cos();
        }
        let mut white = a.clone();
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for v in white.as_mut_slice() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *v += 0.01 * ((x as f64 / u64::MAX as f64) - 0.5);
        }
        assert!(
            evaluate_metric(QualityMetric::AutoCorrelation, &a, &white)
                > evaluate_metric(QualityMetric::AutoCorrelation, &a, &smooth)
        );
    }

    #[test]
    fn cr_metric_constant() {
        let a = NdArray::from_fn(Shape::d1(64), |i| i[0] as f64);
        let b = noisy(&a, 0.5);
        assert_eq!(
            evaluate_metric(QualityMetric::CompressionRatio, &a, &b),
            0.0
        );
    }

    #[test]
    fn metric_names() {
        assert_eq!(QualityMetric::Psnr.name(), "PSNR");
        assert_eq!(QualityMetric::default().name(), "CR");
    }
}
