//! Autocorrelation of compression errors (paper Eq. 4).
//!
//! Users prefer compression errors that behave like white noise; the
//! lag-k autocorrelation of the (flattened, row-major) error sequence
//! quantifies how far from white the error field is. QoZ's "AC preferred"
//! tuning mode minimizes `|AC(lag=1)|`.

use qoz_tensor::{NdArray, Scalar};

/// Lag-`k` autocorrelation of a series:
/// `AC = E[(e_i - mu)(e_{i+k} - mu)] / sigma^2`.
///
/// Returns 0.0 when the series is too short or has zero variance (a
/// constant error field carries no correlation information).
pub fn autocorrelation(series: &[f64], lag: usize) -> f64 {
    if series.len() <= lag + 1 {
        return 0.0;
    }
    let n = series.len();
    let mu = series.iter().sum::<f64>() / n as f64;
    let var = series.iter().map(|e| (e - mu) * (e - mu)).sum::<f64>() / n as f64;
    if var <= 0.0 || !var.is_finite() {
        return 0.0;
    }
    let cov = series[..n - lag]
        .iter()
        .zip(&series[lag..])
        .map(|(a, b)| (a - mu) * (b - mu))
        .sum::<f64>()
        / (n - lag) as f64;
    cov / var
}

/// Lag-`k` autocorrelation of the pointwise compression errors between
/// `original` and `recon` (non-finite points contribute zero error).
pub fn error_autocorrelation<T: Scalar>(
    original: &NdArray<T>,
    recon: &NdArray<T>,
    lag: usize,
) -> f64 {
    assert_eq!(original.shape(), recon.shape(), "shape mismatch");
    let errs: Vec<f64> = original
        .as_slice()
        .iter()
        .zip(recon.as_slice())
        .map(|(a, b)| {
            let d = b.to_f64() - a.to_f64();
            if d.is_finite() {
                d
            } else {
                0.0
            }
        })
        .collect();
    autocorrelation(&errs, lag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_tensor::Shape;

    #[test]
    fn constant_series_zero() {
        assert_eq!(autocorrelation(&[3.0; 100], 1), 0.0);
    }

    #[test]
    fn alternating_series_strongly_negative() {
        let s: Vec<f64> = (0..1000)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let ac = autocorrelation(&s, 1);
        assert!(ac < -0.99, "ac {ac}");
    }

    #[test]
    fn slowly_varying_series_strongly_positive() {
        let s: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.01).sin()).collect();
        let ac = autocorrelation(&s, 1);
        assert!(ac > 0.95, "ac {ac}");
    }

    #[test]
    fn white_noise_near_zero() {
        // xorshift-based pseudo-noise.
        let mut x = 88172645463325252u64;
        let s: Vec<f64> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x as f64 / u64::MAX as f64) - 0.5
            })
            .collect();
        let ac = autocorrelation(&s, 1);
        assert!(ac.abs() < 0.03, "ac {ac}");
    }

    #[test]
    fn lag_two_of_period_two_is_positive() {
        let s: Vec<f64> = (0..1000)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&s, 2) > 0.99);
    }

    #[test]
    fn short_series_returns_zero() {
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), 0.0);
    }

    #[test]
    fn error_ac_of_identical_arrays_is_zero() {
        let a = NdArray::from_fn(Shape::d1(100), |i| i[0] as f64);
        assert_eq!(error_autocorrelation(&a, &a.clone(), 1), 0.0);
    }

    #[test]
    fn error_ac_detects_smooth_error_field() {
        let a = NdArray::from_fn(Shape::d1(2000), |i| (i[0] as f64 * 0.1).sin());
        let mut b = a.clone();
        for (i, v) in b.as_mut_slice().iter_mut().enumerate() {
            // Smooth (highly autocorrelated) error.
            *v += 0.01 * (i as f64 * 0.01).cos();
        }
        assert!(error_autocorrelation(&a, &b, 1) > 0.9);
    }
}
