//! Pointwise error statistics: MSE, NRMSE, PSNR, bound verification.

use qoz_tensor::{NdArray, Scalar};

/// Maximum absolute pointwise error between `original` and `recon`.
///
/// # Panics
/// Panics on shape mismatch.
pub fn max_abs_error<T: Scalar>(original: &NdArray<T>, recon: &NdArray<T>) -> f64 {
    original.max_abs_diff(recon)
}

/// Mean squared error.
pub fn mse<T: Scalar>(original: &NdArray<T>, recon: &NdArray<T>) -> f64 {
    assert_eq!(original.shape(), recon.shape(), "shape mismatch");
    let n = original.len() as f64;
    original
        .as_slice()
        .iter()
        .zip(recon.as_slice())
        .map(|(a, b)| {
            let d = a.to_f64() - b.to_f64();
            d * d
        })
        .sum::<f64>()
        / n
}

/// Normalized root mean squared error: `rmse / value_range(original)`.
///
/// Returns `f64::INFINITY` for constant data with non-zero error.
pub fn nrmse<T: Scalar>(original: &NdArray<T>, recon: &NdArray<T>) -> f64 {
    let rmse = mse(original, recon).sqrt();
    let range = original.value_range();
    if range == 0.0 {
        if rmse == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        rmse / range
    }
}

/// Peak signal-to-noise ratio (paper Eq. 1):
/// `PSNR = 20 * log10(value_range / rmse)`.
///
/// Lossless reconstruction yields `f64::INFINITY`.
pub fn psnr<T: Scalar>(original: &NdArray<T>, recon: &NdArray<T>) -> f64 {
    let m = mse(original, recon);
    let range = original.value_range();
    if m == 0.0 {
        return f64::INFINITY;
    }
    if range == 0.0 {
        return -f64::INFINITY;
    }
    20.0 * (range / m.sqrt()).log10()
}

/// Check the hard error-bound contract: every finite point must satisfy
/// `|x - x'| <= bound` (within 4 ULP-ish slack for accumulated f64
/// rounding). Returns the first violating linear index if any.
pub fn verify_error_bound<T: Scalar>(
    original: &NdArray<T>,
    recon: &NdArray<T>,
    bound: f64,
) -> Option<usize> {
    assert_eq!(original.shape(), recon.shape(), "shape mismatch");
    let slack = bound * 1e-12;
    original
        .as_slice()
        .iter()
        .zip(recon.as_slice())
        .position(|(a, b)| {
            a.is_finite() && b.is_finite() && (a.to_f64() - b.to_f64()).abs() > bound + slack
        })
}

/// Histogram of signed errors over `[-bound, bound]` with `bins` buckets
/// (used to regenerate Fig. 7). Out-of-range errors clamp into the edge
/// buckets so a bound violation is visible as mass at the extremes.
pub fn error_histogram<T: Scalar>(
    original: &NdArray<T>,
    recon: &NdArray<T>,
    bound: f64,
    bins: usize,
) -> Vec<u64> {
    assert!(bins >= 2, "need at least 2 bins");
    assert!(bound > 0.0, "bound must be positive");
    let mut hist = vec![0u64; bins];
    for (a, b) in original.as_slice().iter().zip(recon.as_slice()) {
        if !a.is_finite() || !b.is_finite() {
            continue;
        }
        let e = b.to_f64() - a.to_f64();
        let t = ((e + bound) / (2.0 * bound)).clamp(0.0, 1.0);
        let idx = ((t * bins as f64) as usize).min(bins - 1);
        hist[idx] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_tensor::Shape;

    fn pair() -> (NdArray<f64>, NdArray<f64>) {
        let a = NdArray::from_fn(Shape::d1(100), |i| (i[0] as f64).sin());
        let mut b = a.clone();
        for (i, v) in b.as_mut_slice().iter_mut().enumerate() {
            *v += if i % 2 == 0 { 0.01 } else { -0.01 };
        }
        (a, b)
    }

    #[test]
    fn mse_of_constant_offset() {
        let (a, b) = pair();
        assert!((mse(&a, &b) - 1e-4).abs() < 1e-12);
        assert!((max_abs_error(&a, &b) - 0.01).abs() < 1e-15);
    }

    #[test]
    fn psnr_matches_formula() {
        let (a, b) = pair();
        let range = a.value_range();
        let expect = 20.0 * (range / 0.01).log10();
        assert!((psnr(&a, &b) - expect).abs() < 1e-9);
    }

    #[test]
    fn psnr_infinite_when_lossless() {
        let (a, _) = pair();
        assert_eq!(psnr(&a, &a.clone()), f64::INFINITY);
    }

    #[test]
    fn nrmse_and_psnr_consistent() {
        let (a, b) = pair();
        let n = nrmse(&a, &b);
        let p = psnr(&a, &b);
        assert!((p - (-20.0 * n.log10())).abs() < 1e-9);
    }

    #[test]
    fn verify_bound_accepts_within() {
        let (a, b) = pair();
        assert_eq!(verify_error_bound(&a, &b, 0.01), None);
    }

    #[test]
    fn verify_bound_flags_violation() {
        let (a, mut b) = pair();
        b.as_mut_slice()[17] += 1.0;
        assert_eq!(verify_error_bound(&a, &b, 0.01), Some(17));
    }

    #[test]
    fn verify_bound_ignores_nan() {
        let a = NdArray::from_vec(Shape::d1(3), vec![f64::NAN, 1.0, 2.0]);
        let b = NdArray::from_vec(Shape::d1(3), vec![0.0, 1.0, 2.0]);
        assert_eq!(verify_error_bound(&a, &b, 1e-6), None);
    }

    #[test]
    fn histogram_sums_to_finite_count() {
        let (a, b) = pair();
        let h = error_histogram(&a, &b, 0.01, 20);
        assert_eq!(h.iter().sum::<u64>(), 100);
        // Errors are exactly +-0.01 -> mass in the two edge buckets.
        assert_eq!(h[0], 50);
        assert_eq!(h[19], 50);
    }

    #[test]
    fn histogram_centers_small_errors() {
        let a = NdArray::from_vec(Shape::d1(4), vec![0.0f64; 4]);
        let b = NdArray::from_vec(Shape::d1(4), vec![1e-9; 4]);
        let h = error_histogram(&a, &b, 1.0, 11);
        assert_eq!(h[5], 4);
    }
}
