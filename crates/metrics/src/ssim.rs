//! Structural Similarity Index (SSIM) for scientific data (paper Eq. 2–3).
//!
//! SSIM is computed per local window and averaged (Wang et al. 2004). For
//! floating-point scientific data the stabilizing constants use the
//! *original data's* value range: `c1 = (0.01 R)^2`, `c2 = (0.03 R)^2`.
//! Windows are dense boxes of side [`WINDOW`] (clipped at boundaries)
//! tiled without overlap — the blockwise variant commonly used for large
//! scientific snapshots, which keeps the metric O(n).

use qoz_tensor::{NdArray, Region, Scalar};

/// Window side length per dimension.
pub const WINDOW: usize = 8;

/// Mean SSIM between `original` and `recon`.
///
/// Returns 1.0 for identical arrays. Constant data with a perfect
/// reconstruction is 1.0; constant data with any distortion degrades via
/// the variance terms.
pub fn ssim<T: Scalar>(original: &NdArray<T>, recon: &NdArray<T>) -> f64 {
    assert_eq!(original.shape(), recon.shape(), "shape mismatch");
    let range = original.value_range();
    // Degenerate range: fall back to a tiny epsilon so constants stay
    // positive and identical windows still score 1.
    let r = if range > 0.0 { range } else { 1e-12 };
    let c1 = (0.01 * r) * (0.01 * r);
    let c2 = (0.03 * r) * (0.03 * r);

    let windows = Region::tile(original.shape(), WINDOW);
    let mut total = 0.0;
    let mut count = 0usize;
    for w in &windows {
        let x = original.extract_region(w);
        let y = recon.extract_region(w);
        total += window_ssim(x.as_slice(), y.as_slice(), c1, c2);
        count += 1;
    }
    if count == 0 {
        1.0
    } else {
        total / count as f64
    }
}

/// SSIM of one window (Eq. 3).
fn window_ssim<T: Scalar>(x: &[T], y: &[T], c1: f64, c2: f64) -> f64 {
    let n = x.len() as f64;
    let mut mx = 0.0;
    let mut my = 0.0;
    for (a, b) in x.iter().zip(y) {
        mx += a.to_f64();
        my += b.to_f64();
    }
    mx /= n;
    my /= n;

    let mut vx = 0.0;
    let mut vy = 0.0;
    let mut cov = 0.0;
    for (a, b) in x.iter().zip(y) {
        let dx = a.to_f64() - mx;
        let dy = b.to_f64() - my;
        vx += dx * dx;
        vy += dy * dy;
        cov += dx * dy;
    }
    // Sample statistics with n-1 normalization (n >= 1 windows possible at
    // corners; guard the divide).
    let denom_n = if n > 1.0 { n - 1.0 } else { 1.0 };
    vx /= denom_n;
    vy /= denom_n;
    cov /= denom_n;

    ((2.0 * mx * my + c1) * (2.0 * cov + c2)) / ((mx * mx + my * my + c1) * (vx + vy + c2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_tensor::Shape;

    fn field_2d() -> NdArray<f64> {
        NdArray::from_fn(Shape::d2(64, 64), |i| {
            ((i[0] as f64) * 0.2).sin() + ((i[1] as f64) * 0.13).cos()
        })
    }

    #[test]
    fn identical_arrays_score_one() {
        let a = field_2d();
        assert!((ssim(&a, &a.clone()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ssim_decreases_with_noise() {
        let a = field_2d();
        let mut small = a.clone();
        let mut big = a.clone();
        for (i, (s, b)) in small
            .as_mut_slice()
            .iter_mut()
            .zip(big.as_mut_slice())
            .enumerate()
        {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            *s += sign * 0.001;
            *b += sign * 0.2;
        }
        let s_small = ssim(&a, &small);
        let s_big = ssim(&a, &big);
        assert!(s_small > s_big, "{s_small} vs {s_big}");
        assert!(s_small > 0.99);
        assert!(s_big < 0.9);
    }

    #[test]
    fn ssim_bounded_above_by_one() {
        let a = field_2d();
        let mut b = a.clone();
        for v in b.as_mut_slice() {
            *v *= 1.001;
        }
        let s = ssim(&a, &b);
        assert!(s <= 1.0 + 1e-12);
    }

    #[test]
    fn structural_break_penalized_more_than_offset() {
        // SSIM is sensitive to structure: shuffling a window hurts more
        // than adding the same-magnitude smooth offset.
        let a = field_2d();
        let mut offset = a.clone();
        let amp = 0.05;
        for v in offset.as_mut_slice() {
            *v += amp;
        }
        let mut shuffled = a.clone();
        // Reverse each row chunk of 8 to destroy local correlation while
        // keeping values (and thus magnitude of change) comparable.
        let n = shuffled.len();
        let s = shuffled.as_mut_slice();
        for c in (0..n).step_by(8) {
            let end = (c + 8).min(n);
            s[c..end].reverse();
        }
        assert!(ssim(&a, &offset) > ssim(&a, &shuffled));
    }

    #[test]
    fn works_in_3d() {
        let a = NdArray::from_fn(Shape::d3(16, 16, 16), |i| {
            (i[0] + 2 * i[1] + 3 * i[2]) as f64 * 0.01
        });
        assert!((ssim(&a, &a.clone()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_data_identical_is_one() {
        let a = NdArray::from_vec(Shape::d2(8, 8), vec![5.0f32; 64]);
        assert!((ssim(&a, &a.clone()) - 1.0).abs() < 1e-9);
    }
}
