//! Compression quality metrics (QoZ paper §III).
//!
//! The QoZ framework optimizes rate-distortion against a *user-selected*
//! quality metric. This crate implements every metric the paper evaluates:
//!
//! * [`error_stats`] — max error, MSE, NRMSE, PSNR (Eq. 1), bound checks,
//!   error histograms (Fig. 7),
//! * [`mod@ssim`] — windowed Structural Similarity (Eq. 2–3, Fig. 9),
//! * [`autocorr`] — lag-k autocorrelation of compression errors (Eq. 4,
//!   Fig. 10),
//! * [`quality`] — the [`quality::QualityMetric`] selector plumbed through
//!   the QoZ tuner, with the "which result is better" ordering used by the
//!   Table I comparison logic.

pub mod autocorr;
pub mod error_stats;
pub mod quality;
pub mod report;
pub mod ssim;

pub use autocorr::{autocorrelation, error_autocorrelation};
pub use error_stats::{error_histogram, max_abs_error, mse, nrmse, psnr, verify_error_bound};
pub use quality::{evaluate_metric, QualityMetric};
pub use report::QualityReport;
pub use ssim::ssim;
