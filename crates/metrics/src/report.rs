//! One-call quality assessment report (a Z-checker-style summary).
//!
//! Collects every metric the paper reports for a (original,
//! reconstruction) pair into a single struct with a readable `Display`,
//! used by the CLI's `eval` command and handy in tests.

use crate::autocorr::error_autocorrelation;
use crate::error_stats::{max_abs_error, mse, nrmse, psnr};
use crate::ssim::ssim;
use qoz_tensor::{NdArray, Scalar};

/// Full quality summary for a reconstruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// Number of data points.
    pub points: usize,
    /// Value range of the original data.
    pub value_range: f64,
    /// Maximum absolute pointwise error.
    pub max_abs_error: f64,
    /// Mean squared error.
    pub mse: f64,
    /// Normalized root mean squared error.
    pub nrmse: f64,
    /// Peak signal-to-noise ratio (dB).
    pub psnr: f64,
    /// Mean windowed SSIM.
    pub ssim: f64,
    /// Lag-1 autocorrelation of errors (signed).
    pub ac_lag1: f64,
    /// Lag-2 autocorrelation of errors (signed).
    pub ac_lag2: f64,
}

impl QualityReport {
    /// Compute the full report.
    pub fn new<T: Scalar>(original: &NdArray<T>, recon: &NdArray<T>) -> Self {
        QualityReport {
            points: original.len(),
            value_range: original.value_range(),
            max_abs_error: max_abs_error(original, recon),
            mse: mse(original, recon),
            nrmse: nrmse(original, recon),
            psnr: psnr(original, recon),
            ssim: ssim(original, recon),
            ac_lag1: error_autocorrelation(original, recon, 1),
            ac_lag2: error_autocorrelation(original, recon, 2),
        }
    }

    /// Check the report against an absolute error bound.
    pub fn within_bound(&self, bound: f64) -> bool {
        self.max_abs_error <= bound * (1.0 + 1e-9)
    }
}

impl std::fmt::Display for QualityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "points        : {}", self.points)?;
        writeln!(f, "value range   : {:.6e}", self.value_range)?;
        writeln!(f, "max |error|   : {:.6e}", self.max_abs_error)?;
        writeln!(f, "MSE           : {:.6e}", self.mse)?;
        writeln!(f, "NRMSE         : {:.6e}", self.nrmse)?;
        writeln!(f, "PSNR          : {:.3} dB", self.psnr)?;
        writeln!(f, "SSIM          : {:.6}", self.ssim)?;
        writeln!(f, "AC (lag 1)    : {:+.6}", self.ac_lag1)?;
        write!(f, "AC (lag 2)    : {:+.6}", self.ac_lag2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_tensor::Shape;

    #[test]
    fn report_consistent_with_individual_metrics() {
        let a = NdArray::from_fn(Shape::d2(32, 32), |i| {
            ((i[0] * 32 + i[1]) as f64 * 0.01).sin()
        });
        let mut b = a.clone();
        for (k, v) in b.as_mut_slice().iter_mut().enumerate() {
            *v += if k % 3 == 0 { 1e-4 } else { -1e-4 };
        }
        let r = QualityReport::new(&a, &b);
        assert_eq!(r.points, 1024);
        assert!((r.psnr - psnr(&a, &b)).abs() < 1e-12);
        assert!((r.ssim - ssim(&a, &b)).abs() < 1e-12);
        assert!(r.within_bound(1e-4));
        assert!(!r.within_bound(1e-5));
    }

    #[test]
    fn display_contains_all_rows() {
        let a = NdArray::from_fn(Shape::d1(64), |i| i[0] as f32);
        let r = QualityReport::new(&a, &a.clone());
        let s = r.to_string();
        for key in ["PSNR", "SSIM", "NRMSE", "AC (lag 1)", "max |error|"] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }

    #[test]
    fn lossless_report_is_perfect() {
        let a = NdArray::from_fn(Shape::d1(128), |i| (i[0] as f64).sqrt());
        let r = QualityReport::new(&a, &a.clone());
        assert_eq!(r.max_abs_error, 0.0);
        assert_eq!(r.psnr, f64::INFINITY);
        assert!((r.ssim - 1.0).abs() < 1e-12);
    }
}
