//! Region-of-interest decompression from an indexed archive: compress a
//! snapshot once, then serve slab queries by touching only the chunks
//! they intersect.
//!
//! ```text
//! cargo run --release --example region_query
//! ```

use qoz_suite::api::{BackendId, Session};
use qoz_suite::archive::{ArchiveReader, ArchiveWriter};
use qoz_suite::codec::ErrorBound;
use qoz_suite::datagen::{Dataset, SizeClass};
use qoz_suite::tensor::{NdArray, Region};

fn main() {
    let data = Dataset::Hurricane.generate(SizeClass::Small, 0);
    let shape = data.shape();
    println!(
        "snapshot {:?} ({:.1} MB raw)",
        shape,
        (data.len() * 4) as f64 / 1e6
    );

    // Compress once into a chunked archive.
    let t0 = std::time::Instant::now();
    let session = Session::builder()
        .backend(BackendId::Qoz)
        .bound(ErrorBound::Rel(1e-3))
        .build()
        .unwrap();
    let mut w = ArchiveWriter::new().with_chunk_side(32);
    w.add_variable(
        "wind",
        &data,
        &*session.codec::<f32>(),
        ErrorBound::Rel(1e-3),
    )
    .unwrap();
    let bytes = w.finish();
    println!(
        "archived: {} chunks, {:.2} MB (CR {:.1}x) in {:.0} ms\n",
        ArchiveReader::from_bytes(&bytes).unwrap().toc().vars[0]
            .chunks
            .len(),
        bytes.len() as f64 / 1e6,
        (data.len() * 4) as f64 / bytes.len() as f64,
        t0.elapsed().as_secs_f64() * 1e3,
    );

    // A small slab near the vortex core — the common "inspect one
    // feature" access pattern.
    let roi = Region::new(
        &[shape.dim(0) / 3, shape.dim(1) / 2, shape.dim(2) / 4],
        &[8, 24, 24],
    );
    let t0 = std::time::Instant::now();
    let r = ArchiveReader::from_bytes(&bytes).unwrap();
    let slab: NdArray<f32> = r.read_region("wind", &roi).unwrap();
    let t_region = t0.elapsed().as_secs_f64();
    println!(
        "region {:?}+{:?} ({} points, {:.2}% of the field):",
        roi.origin(),
        roi.size(),
        roi.len(),
        roi.len() as f64 / data.len() as f64 * 100.0
    );
    println!(
        "  bytes read   : {} of {} ({:.2}% of the archive)",
        r.bytes_read(),
        r.archive_len(),
        r.bytes_read() as f64 / r.archive_len() as f64 * 100.0
    );

    // Contrast with decompressing everything.
    let t0 = std::time::Instant::now();
    let r_full = ArchiveReader::from_bytes(&bytes).unwrap();
    let full: NdArray<f32> = r_full.read_full("wind").unwrap();
    let t_full = t0.elapsed().as_secs_f64();
    println!(
        "  query time   : {:.1} ms vs {:.1} ms full decompress ({:.0}x speedup)",
        t_region * 1e3,
        t_full * 1e3,
        t_full / t_region.max(1e-9)
    );

    // The slab is bitwise identical to slicing the full reconstruction.
    assert_eq!(slab.as_slice(), full.extract_region(&roi).as_slice());
    println!("  slab is bitwise-equal to the full-decompress slice ✓");

    // Integrity: every chunk checksum verifies without decompression.
    let report = r.verify().unwrap();
    println!(
        "\nverify: {} chunks / {} payload bytes checksum-clean ✓",
        report.chunks, report.payload_bytes
    );
}
