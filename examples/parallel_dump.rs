//! Parallel data dumping: per-rank chunked compression on real threads
//! plus the shared-bandwidth I/O model — the paper's Fig. 14 scenario on
//! a laptop.
//!
//! ```text
//! cargo run --release --example parallel_dump
//! ```

use qoz_suite::api::{BackendId, Session};
use qoz_suite::codec::ErrorBound;
use qoz_suite::datagen::{Dataset, SizeClass};
use qoz_suite::pario::{chunk_along_dim0, compress_chunks, decompress_chunks, IoModel};
use qoz_suite::tensor::NdArray;

fn main() {
    let data = Dataset::Hurricane.generate(SizeClass::Small, 0);
    let ranks = 8; // local stand-in for the paper's 1K-8K MPI ranks
    let bound = ErrorBound::Rel(1e-3);
    println!(
        "Hurricane-like volume {:?} split over {ranks} worker threads\n",
        data.shape()
    );

    // 1. Real thread-parallel per-rank compression.
    let chunks = chunk_along_dim0(&data, ranks);
    let session = Session::builder()
        .backend(BackendId::Qoz)
        .bound(bound)
        .build()
        .unwrap();
    let qoz = session.codec::<f32>();
    let t0 = std::time::Instant::now();
    let blobs = compress_chunks(&*qoz, &chunks, bound, ranks);
    let t_par = t0.elapsed().as_secs_f64();
    let raw: usize = chunks.iter().map(|c| c.len() * 4).sum();
    let packed: usize = blobs.iter().map(Vec::len).sum();
    let cr = raw as f64 / packed as f64;
    println!(
        "parallel compression: {:.1} MB -> {:.2} MB (CR {:.1}x) in {:.0} ms ({:.0} MB/s aggregate)",
        raw as f64 / 1e6,
        packed as f64 / 1e6,
        cr,
        t_par * 1e3,
        raw as f64 / 1e6 / t_par
    );

    let recon: Vec<NdArray<f32>> = decompress_chunks(&*qoz, &blobs, ranks).unwrap();
    for (c, r) in chunks.iter().zip(&recon) {
        assert!(c.max_abs_diff(r) <= bound.absolute(c), "bound violated");
    }
    println!("all {ranks} chunks verified within the error bound ✓\n");

    // 2. Project to supercomputer scale with the bandwidth model, using
    //    throughput measured on one chunk.
    let one = &chunks[0];
    let t0 = std::time::Instant::now();
    let blob = qoz.compress(one, bound);
    let comp_bps = (one.len() * 4) as f64 / t0.elapsed().as_secs_f64();
    let t0 = std::time::Instant::now();
    let _: NdArray<f32> = qoz.decompress(&blob).unwrap();
    let decomp_bps = (one.len() * 4) as f64 / t0.elapsed().as_secs_f64();

    println!("projected dump times (1.3 GB/rank, 80 GB/s filesystem):");
    println!("{:>7}  {:>10} {:>10}", "ranks", "raw dump", "QoZ dump");
    for ranks in [1024usize, 2048, 4096, 8192] {
        let m = IoModel {
            ranks,
            ..Default::default()
        };
        println!(
            "{:>7}  {:>9.1}s {:>9.1}s",
            ranks,
            m.raw().dump_s(),
            m.with_codec(cr, comp_bps, decomp_bps).dump_s()
        );
    }
    println!("\npast filesystem saturation, bytes-on-the-wire dominate and the");
    println!("compression-ratio advantage becomes an end-to-end dump-time win.");
}
