//! Quality-metric-oriented tuning on a climate field (the paper's core
//! feature): the *same* error bound, four different tuning inclinations,
//! four different compression outcomes.
//!
//! Climate analysts might demand low NRMSE (→ PSNR mode), visualization
//! teams high SSIM, statisticians white compression noise (→ AC mode),
//! and archival pipelines raw capacity (→ CR mode). QoZ serves each from
//! one codebase — the scenario motivating the paper's introduction.
//!
//! ```text
//! cargo run --release --example climate_quality_tuning
//! ```

use qoz_suite::api::{BackendId, Session};
use qoz_suite::codec::ErrorBound;
use qoz_suite::datagen::{Dataset, SizeClass};
use qoz_suite::metrics::{self, QualityMetric};
use qoz_suite::qoz::Qoz;
use qoz_suite::tensor::NdArray;

fn main() {
    let data = Dataset::CesmAtm.generate(SizeClass::Small, 0);
    let bound = ErrorBound::Rel(1e-3);
    let abs = bound.absolute(&data);
    println!(
        "CESM-ATM-like field {:?}, value-range eps = 1e-3 (abs e = {abs:.3e})\n",
        data.shape()
    );
    println!(
        "{:<22} {:>8} {:>9} {:>9} {:>9}  (alpha,beta)",
        "tuning mode", "CR", "PSNR", "SSIM", "|AC|"
    );

    for metric in [
        QualityMetric::CompressionRatio,
        QualityMetric::Psnr,
        QualityMetric::Ssim,
        QualityMetric::AutoCorrelation,
    ] {
        // One session per inclination; the plan (inspected below) shows
        // what the online tuner decided for it.
        let session = Session::builder()
            .backend(BackendId::Qoz)
            .metric(metric)
            .bound(bound)
            .build()
            .unwrap();
        let plan = Qoz::for_metric(metric).plan(&data, bound);
        let out = session.compress(&data).unwrap();
        let blob = out.blob;
        let recon: NdArray<f32> = session.decompress(&blob).unwrap();
        assert!(
            metrics::verify_error_bound(&data, &recon, abs).is_none(),
            "all modes must respect the same hard bound"
        );
        println!(
            "{:<22} {:>8.1} {:>9.2} {:>9.4} {:>9.4}  ({}, {})",
            format!("{} preferred", metric.name()),
            (data.len() * 4) as f64 / blob.len() as f64,
            metrics::psnr(&data, &recon),
            metrics::ssim(&data, &recon),
            metrics::error_autocorrelation(&data, &recon, 1).abs(),
            plan.alpha,
            plan.beta,
        );
    }
    println!("\nEvery mode met the identical error bound; only the");
    println!("rate/quality trade-off moved toward the requested metric.");
}
