//! Archive to a quality contract: instead of choosing an error bound and
//! hoping the quality is right, request the quality directly and let QoZ
//! find the cheapest bound that satisfies it (the fixed-quality extension
//! of the paper's related work, built on QoZ's sampling machinery).
//!
//! ```text
//! cargo run --release --example fixed_quality_archive
//! ```

use qoz_suite::datagen::{Dataset, SizeClass};
use qoz_suite::qoz::{Qoz, QualityTarget};

fn main() {
    let qoz = Qoz::default();
    println!(
        "{:<12} {:<12} {:>11} {:>11} {:>8}",
        "dataset", "target", "achieved", "rel bound", "CR"
    );
    for ds in [Dataset::CesmAtm, Dataset::Miranda, Dataset::Hurricane] {
        let data = ds.generate(SizeClass::Small, 0);
        let raw = (data.len() * 4) as f64;
        for target in [
            QualityTarget::Psnr(50.0),
            QualityTarget::Psnr(70.0),
            QualityTarget::Ssim(0.99),
        ] {
            let r = qoz
                .compress_to_quality(&data, target)
                .expect("self-produced stream must decode");
            let label = match target {
                QualityTarget::Psnr(v) => format!("PSNR>={v}"),
                QualityTarget::Ssim(v) => format!("SSIM>={v}"),
            };
            println!(
                "{:<12} {:<12} {:>11.4} {:>11.3e} {:>8.1}",
                ds.name(),
                label,
                r.achieved,
                r.rel_bound,
                raw / r.blob.len() as f64
            );
        }
    }
    println!("\neach row met its quality contract at the loosest bound the");
    println!("sampled search could certify — no trial-and-error recompression.");
}
