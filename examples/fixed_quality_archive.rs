//! Archive to a quality contract: instead of choosing an error bound and
//! hoping the quality is right, request the quality directly and let the
//! session find the cheapest bound that satisfies it (the fixed-quality
//! extension of the paper's related work, built on QoZ's sampling
//! machinery and exposed for every backend through `qoz_api`).
//!
//! ```text
//! cargo run --release --example fixed_quality_archive
//! ```

use qoz_suite::api::{Session, Target};
use qoz_suite::datagen::{Dataset, SizeClass};

fn main() {
    println!(
        "{:<12} {:<12} {:>11} {:>11} {:>8}",
        "dataset", "target", "achieved", "rel bound", "CR"
    );
    for ds in [Dataset::CesmAtm, Dataset::Miranda, Dataset::Hurricane] {
        let data = ds.generate(SizeClass::Small, 0);
        let raw = (data.len() * 4) as f64;
        for target in [Target::Psnr(50.0), Target::Psnr(70.0), Target::Ssim(0.99)] {
            let session = Session::builder().target(target).build().unwrap();
            let out = session
                .compress(&data)
                .expect("self-produced stream must decode");
            let label = match target {
                Target::Psnr(v) => format!("PSNR>={v}"),
                Target::Ssim(v) => format!("SSIM>={v}"),
                _ => unreachable!(),
            };
            println!(
                "{:<12} {:<12} {:>11.4} {:>11.3e} {:>8.1}",
                ds.name(),
                label,
                out.achieved.unwrap(),
                out.rel_bound.unwrap(),
                raw / out.blob.len() as f64
            );
        }
    }
    println!("\neach row met its quality contract at the loosest bound the");
    println!("sampled search could certify — no trial-and-error recompression.");
}
