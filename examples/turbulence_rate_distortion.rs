//! Rate-distortion shoot-out on turbulence data: all five compressors,
//! a sweep of error bounds, one table — a miniature of the paper's
//! Fig. 8 on the Miranda-like dataset.
//!
//! ```text
//! cargo run --release --example turbulence_rate_distortion
//! ```

use qoz_suite::codec::{Compressor, ErrorBound};
use qoz_suite::datagen::{Dataset, SizeClass};
use qoz_suite::metrics::{self, QualityMetric};
use qoz_suite::tensor::NdArray;

/// A compressor adapted to return `(blob, reconstruction)` in one call.
type RoundtripFn = Box<dyn Fn(&NdArray<f32>, ErrorBound) -> (Vec<u8>, NdArray<f32>)>;

fn main() {
    let data = Dataset::Miranda.generate(SizeClass::Small, 0);
    println!(
        "Miranda-like turbulence {:?} — rate-distortion sweep\n",
        data.shape()
    );
    println!(
        "{:<8} {:>9} {:>10} {:>9} {:>9}",
        "codec", "eps", "bitrate", "PSNR", "CR"
    );

    // The five compressors of the paper's evaluation; QoZ tuned for PSNR.
    let compressors: Vec<(&str, RoundtripFn)> = vec![
        ("SZ2.1", boxed(qoz_suite::sz2::Sz2::default())),
        ("SZ3", boxed(qoz_suite::sz3::Sz3::default())),
        ("ZFP", boxed(qoz_suite::zfp::Zfp)),
        ("MGARD+", boxed(qoz_suite::mgard::Mgard)),
        (
            "QoZ",
            boxed(qoz_suite::qoz::Qoz::for_metric(QualityMetric::Psnr)),
        ),
    ];

    for (name, run) in &compressors {
        for eps in [1e-2, 1e-3, 1e-4] {
            let bound = ErrorBound::Rel(eps);
            let (blob, recon) = run(&data, bound);
            let bitrate = blob.len() as f64 * 8.0 / data.len() as f64;
            println!(
                "{:<8} {:>9.0e} {:>10.4} {:>9.2} {:>9.1}",
                name,
                eps,
                bitrate,
                metrics::psnr(&data, &recon),
                32.0 / bitrate
            );
        }
    }
    println!("\nLower bitrate at equal PSNR (or higher PSNR at equal bitrate) wins;");
    println!("compare the QoZ rows against each baseline at matching eps.");
}

/// Adapt any `Compressor<f32>` into a closure producing (blob, recon).
fn boxed<C: Compressor<f32> + 'static>(c: C) -> RoundtripFn {
    Box::new(move |data, bound| {
        let blob = c.compress(data, bound);
        let recon = c.decompress(&blob).expect("self-produced blob");
        (blob, recon)
    })
}
