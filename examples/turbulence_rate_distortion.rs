//! Rate-distortion shoot-out on turbulence data: all five compressors,
//! a sweep of error bounds, one table — a miniature of the paper's
//! Fig. 8 on the Miranda-like dataset.
//!
//! ```text
//! cargo run --release --example turbulence_rate_distortion
//! ```

use qoz_suite::api::BackendRegistry;
use qoz_suite::codec::ErrorBound;
use qoz_suite::datagen::{Dataset, SizeClass};
use qoz_suite::metrics::{self, QualityMetric};

fn main() {
    let data = Dataset::Miranda.generate(SizeClass::Small, 0);
    println!(
        "Miranda-like turbulence {:?} — rate-distortion sweep\n",
        data.shape()
    );
    println!(
        "{:<8} {:>9} {:>10} {:>9} {:>9}",
        "codec", "eps", "bitrate", "PSNR", "CR"
    );

    // The five compressors of the paper's evaluation (one registry,
    // QoZ tuned for PSNR), in table order.
    let registry = BackendRegistry::with_metric(QualityMetric::Psnr);

    for codec in registry.paper_set::<f32>() {
        let name = codec.name();
        for eps in [1e-2, 1e-3, 1e-4] {
            let bound = ErrorBound::Rel(eps);
            let blob = codec.compress(&data, bound);
            let recon = codec.decompress(&blob).expect("self-produced blob");
            let bitrate = blob.len() as f64 * 8.0 / data.len() as f64;
            println!(
                "{:<8} {:>9.0e} {:>10.4} {:>9.2} {:>9.1}",
                name,
                eps,
                bitrate,
                metrics::psnr(&data, &recon),
                32.0 / bitrate
            );
        }
    }
    println!("\nLower bitrate at equal PSNR (or higher PSNR at equal bitrate) wins;");
    println!("compare the QoZ rows against each baseline at matching eps.");
}
