//! Quickstart: compress a scientific field with QoZ, inspect the tuned
//! plan, decompress, and verify the error-bound contract.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qoz_suite::api::{BackendId, Session};
use qoz_suite::codec::ErrorBound;
use qoz_suite::datagen::{Dataset, SizeClass};
use qoz_suite::metrics::{self, QualityMetric};
use qoz_suite::qoz::Qoz;
use qoz_suite::tensor::NdArray;

fn main() {
    // A turbulence-like 3D field standing in for the Miranda dataset.
    let data = Dataset::Miranda.generate(SizeClass::Small, 0);
    println!(
        "input: Miranda-like {:?}, {} points ({:.1} MB)",
        data.shape(),
        data.len(),
        (data.len() * 4) as f64 / 1e6
    );

    // Value-range-relative error bound of 1e-3, tuned for rate-PSNR —
    // one validated session, built once, reused for every array.
    let bound = ErrorBound::Rel(1e-3);
    let session = Session::builder()
        .backend(BackendId::Qoz)
        .metric(QualityMetric::Psnr)
        .bound(bound)
        .build()
        .expect("bound is valid");

    // The plan shows what the online tuner will decide inside the
    // session's compress call.
    let plan = Qoz::for_metric(QualityMetric::Psnr).plan(&data, bound);
    println!(
        "tuned plan: alpha={}, beta={}, anchor stride={}, {} levels",
        plan.alpha,
        plan.beta,
        plan.spec.anchor_stride.unwrap(),
        plan.spec.max_level
    );
    for (l, (cfg, eb)) in plan
        .spec
        .level_configs
        .iter()
        .zip(&plan.spec.level_ebs)
        .enumerate()
    {
        println!(
            "  level {}: {} interpolation, order {}, e_l = {:.3e}",
            l + 1,
            cfg.kind.name(),
            cfg.order.name(data.shape().ndim()),
            eb
        );
    }

    let t0 = std::time::Instant::now();
    let out = session.compress(&data).expect("compression failed");
    let dt = t0.elapsed();
    println!(
        "compressed: {} bytes, CR = {:.1}x, {:.0} MB/s",
        out.stats.compressed_bytes,
        out.stats.ratio(),
        out.stats.raw_bytes as f64 / 1e6 / dt.as_secs_f64()
    );

    let recon: NdArray<f32> = session.decompress(&out.blob).expect("decompression failed");
    let abs = bound.absolute(&data);
    println!(
        "quality: PSNR = {:.2} dB, SSIM = {:.4}, max|err| = {:.3e} (bound {:.3e})",
        metrics::psnr(&data, &recon),
        metrics::ssim(&data, &recon),
        data.max_abs_diff(&recon),
        abs
    );
    assert!(
        metrics::verify_error_bound(&data, &recon, abs).is_none(),
        "error bound violated!"
    );
    println!("error bound verified on every point ✓");
}
